"""The sweep planner: score whole scenario spaces in batched matrix form.

Where :func:`~repro.core.sensitivity.run_sensitivity` answers one what-if
question per call, :class:`SweepPlanner` answers thousands: it enumerates a
:class:`~repro.scenarios.space.ScenarioSpace`, compiles every scenario in a
chunk into one stacked perturbation matrix, and scores the stack through
:meth:`~repro.core.model_manager.ModelManager.predict_kpi_batch` — one kernel
pass per chunk instead of a Python loop of sensitivity calls.  The KPI values
are **bitwise identical** to running the per-scenario sensitivity path
(chunks only regroup matrices whose per-row predictions are independent), so
a sweep is a pure batching win, never an approximation.

Results land as a ranked :class:`SweepResult`:

* the **top-k frontier** — the best scenarios under the sweep's goal;
* **per-axis marginal KPI profiles** — mean/best KPI at every level of every
  axis, the "which dial matters" view across the whole space;
* optional **cohort breakdowns** — per-cohort KPI of the frontier scenarios,
  computed from the frame layer's group-index arrays (no sub-frame or
  per-cohort model is materialised).

The ``checkpoint`` callable threads the async engine's progress/cancellation
through the chunk loop exactly like the other analysis runners.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.model_manager import ModelManager
from ..core.sensitivity import split_ranges
from ..frame.kernels import group_index
from .kernel import grid_kernel_applies, grid_sweep_kpis
from .space import ScenarioSpace, SweepScenario

__all__ = ["SweepEntry", "SweepResult", "SweepPlanner", "run_sweep", "SWEEP_GOALS"]

#: Goals a sweep can rank by.
SWEEP_GOALS = ("maximize", "minimize")

#: Scenarios compiled and scored per kernel pass.  Each chunk stacks this
#: many perturbed copies of the driver matrix, so the working set stays in
#: cache while the per-call overhead amortises across the whole chunk.
SWEEP_CHUNK_SCENARIOS = 64

#: Largest sweep whose raw per-scenario KPI surface is embedded in
#: :meth:`SweepResult.to_dict` — bigger sweeps serialise ``kpi_values`` as
#: ``None`` so ledger entries and job payloads stay bounded (the frontier,
#: marginals, and cohorts already summarise the space).
MAX_SERIALIZED_KPI_VALUES = 10_000


@dataclass(frozen=True)
class SweepEntry:
    """One ranked scenario of a sweep (a row of the frontier table).

    Attributes
    ----------
    rank:
        1-based position under the sweep's goal (1 = best).
    scenario_index:
        The scenario's index in the space's enumeration order.
    amounts:
        ``{driver: amount}`` of the scenario's perturbations.
    kpi_value:
        Aggregate KPI the model predicts for the scenario.
    uplift:
        ``kpi_value`` minus the baseline KPI.
    label:
        Human-readable rendering (``"Call +20%, Email -10%"``).
    """

    rank: int
    scenario_index: int
    amounts: dict[str, float]
    kpi_value: float
    uplift: float
    label: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "rank": self.rank,
            "scenario_index": self.scenario_index,
            "amounts": dict(self.amounts),
            "kpi_value": self.kpi_value,
            "uplift": self.uplift,
            "label": self.label,
        }


@dataclass(frozen=True)
class SweepResult:
    """Output of one scenario-space sweep.

    Attributes
    ----------
    kpi:
        KPI column name.
    goal:
        ``"maximize"`` or ``"minimize"`` (what the ranking optimises).
    baseline_kpi:
        KPI predicted on the unperturbed dataset.
    n_space:
        Cartesian size of the space before pruning/sampling.
    n_scenarios:
        Scenarios actually scored.
    n_pruned:
        Combinations removed by constraint predicates (exhaustive spaces
        only; sampled spaces report 0 because rejected draws are retried).
    space:
        Canonical JSON form of the swept space.
    top:
        The top-k frontier, best first.
    marginals:
        ``{driver: [{"amount", "count", "mean_kpi", "best_kpi"}, ...]}`` —
        the KPI profile along each axis, marginalised over all scenarios.
    cohorts:
        Per-cohort KPI of the frontier scenarios (``None`` unless a cohort
        column was requested).
    kpi_values:
        Every scenario's KPI in enumeration order (the raw sweep surface).
        Always populated on the result object; serialised by
        :meth:`to_dict` only up to :data:`MAX_SERIALIZED_KPI_VALUES`
        scenarios (``None`` beyond, keeping ledger entries and job payloads
        bounded).
    """

    kpi: str
    goal: str
    baseline_kpi: float
    n_space: int
    n_scenarios: int
    n_pruned: int
    space: dict[str, Any]
    top: tuple[SweepEntry, ...]
    marginals: dict[str, list[dict[str, Any]]]
    cohorts: dict[str, Any] | None = None
    kpi_values: tuple[float, ...] = field(default=(), repr=False)
    kpi_unit: str = ""

    @property
    def best(self) -> SweepEntry:
        """The frontier's best scenario."""
        return self.top[0]

    @property
    def best_kpi(self) -> float:
        """KPI value of the best scenario."""
        return self.best.kpi_value

    @property
    def uplift(self) -> float:
        """Best KPI minus baseline."""
        return self.best.uplift

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "kpi": self.kpi,
            "goal": self.goal,
            "baseline_kpi": self.baseline_kpi,
            "n_space": self.n_space,
            "n_scenarios": self.n_scenarios,
            "n_pruned": self.n_pruned,
            "space": dict(self.space),
            "top": [entry.to_dict() for entry in self.top],
            "marginals": {
                driver: [dict(point) for point in points]
                for driver, points in self.marginals.items()
            },
            "cohorts": dict(self.cohorts) if self.cohorts is not None else None,
            "kpi_values": (
                list(self.kpi_values)
                if len(self.kpi_values) <= MAX_SERIALIZED_KPI_VALUES
                else None
            ),
            "kpi_unit": self.kpi_unit,
        }


class SweepPlanner:
    """Plans and executes one batched sweep over a scenario space.

    Parameters
    ----------
    manager:
        The session's trained model manager.
    space:
        The scenario space to evaluate.
    goal:
        ``"maximize"`` (default) or ``"minimize"``.
    top_k:
        Frontier size (ties resolve in enumeration order).
    cohort_column:
        Optional column to break the frontier scenarios down by.
    """

    def __init__(
        self,
        manager: ModelManager,
        space: ScenarioSpace,
        *,
        goal: str = "maximize",
        top_k: int = 10,
        cohort_column: str | None = None,
    ) -> None:
        if goal not in SWEEP_GOALS:
            raise ValueError(f"goal must be one of {SWEEP_GOALS}, got {goal!r}")
        if top_k < 1:
            raise ValueError(f"top_k must be at least 1, got {top_k}")
        unknown = [d for d in space.drivers if d not in manager.drivers]
        if unknown:
            raise ValueError(
                f"swept drivers are not model inputs: {unknown}; "
                f"available drivers: {manager.drivers}"
            )
        if cohort_column is not None and not manager.frame.has_column(cohort_column):
            raise ValueError(f"cohort column {cohort_column!r} not found in the dataset")
        self.manager = manager
        self.space = space
        self.goal = goal
        self.top_k = top_k
        self.cohort_column = cohort_column

    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        checkpoint: Callable[[float], None] | None = None,
        executor=None,
        emit: Callable[..., None] | None = None,
    ) -> SweepResult:
        """Enumerate, score, rank, and profile the space.

        ``checkpoint`` is called with the completed fraction after every
        scored chunk (and during the cohort breakdown), publishing progress
        and honouring cooperative cancellation between kernel passes.  With
        ``executor`` (a process executor), scoring is partitioned into
        contiguous sub-range work units scored by worker processes and merged
        in enumeration order — bitwise identical to the serial paths.

        ``emit`` (the job context's event publisher) streams incremental
        ``sweep_chunk`` events — one per scored chunk or completed work
        unit, carrying the enumeration range and the running best scenario —
        so subscribers watch the frontier improve live.  The serial grid
        kernel accumulates KPIs across trees and only yields the complete
        surface at the end, so that path publishes progress ticks but no
        partial frontiers.
        """
        scenarios = self.space.scenarios()
        if not scenarios:
            raise ValueError(
                "the scenario space is empty after constraint pruning; "
                "relax the constraints or widen the axes"
            )
        if checkpoint is not None:
            checkpoint(0.0)
        kpis = self._score(scenarios, checkpoint, executor=executor, emit=emit)
        order = self._rank(kpis)
        baseline = self.manager.baseline_kpi()
        top = self._frontier(scenarios, kpis, order, baseline)
        marginals = self._marginals(scenarios, kpis)
        cohorts = (
            self._cohort_breakdown(scenarios, top, checkpoint)
            if self.cohort_column is not None
            else None
        )
        n_pruned = (
            self.space.size - len(scenarios) if self.space.sample is None else 0
        )
        return SweepResult(
            kpi=self.manager.kpi.name,
            goal=self.goal,
            baseline_kpi=baseline,
            n_space=self.space.size,
            n_scenarios=len(scenarios),
            n_pruned=n_pruned,
            space=self.space.to_dict(),
            top=top,
            marginals=marginals,
            cohorts=cohorts,
            kpi_values=tuple(float(v) for v in kpis),
            kpi_unit=self.manager.kpi.unit,
        )

    # ------------------------------------------------------------------ #
    def _score(
        self,
        scenarios: list[SweepScenario],
        checkpoint: Callable[[float], None] | None,
        *,
        chunk_scenarios: int | None = None,
        executor=None,
        emit: Callable[..., None] | None = None,
    ) -> np.ndarray:
        """Score every scenario in batched matrix form.

        Exhaustive grid spaces on kernel-compiled forests go through the
        grid kernel — one box-propagating traversal per tree for the whole
        space (see :mod:`repro.scenarios.kernel`).  Everything else falls
        back to stacked ``predict_kpi_batch`` chunks.  Both paths regroup
        work without moving a single bit of any KPI value, so results are
        identical to the per-scenario sensitivity path either way.
        """
        if chunk_scenarios is None:  # read at call time so tests can shrink chunks
            chunk_scenarios = SWEEP_CHUNK_SCENARIOS
        manager = self.manager
        # the cohort phase owns the tail of the progress bar when requested
        scored_share = 0.9 if self.cohort_column is not None else 1.0
        if executor is not None:
            unit_kpis = self._score_units(
                scenarios, checkpoint, executor, scored_share, emit
            )
            if unit_kpis is not None:
                return unit_kpis
        grid_kpis = grid_sweep_kpis(
            manager,
            self.space,
            checkpoint=checkpoint,
            progress_share=scored_share,
        )
        if grid_kpis is not None:
            return grid_kpis
        baseline_matrix = manager.driver_matrix()
        kpis = np.empty(len(scenarios))
        running_best: dict[str, Any] = {}
        for start in range(0, len(scenarios), chunk_scenarios):
            chunk = scenarios[start : start + chunk_scenarios]
            matrices = [
                self.space.perturbations(scenario).apply_to_matrix(
                    baseline_matrix, manager.drivers
                )
                for scenario in chunk
            ]
            kpis[start : start + len(chunk)] = manager.predict_kpi_batch(matrices)
            if checkpoint is not None:
                checkpoint(scored_share * (start + len(chunk)) / len(scenarios))
            if emit is not None:
                emit(
                    "sweep_chunk",
                    self._frontier_chunk(
                        scenarios,
                        kpis[start : start + len(chunk)],
                        start,
                        start + len(chunk),
                        scored=start + len(chunk),
                        total=len(scenarios),
                        running_best=running_best,
                        include_values=True,
                    ),
                )
        return kpis

    def _frontier_chunk(
        self,
        scenarios: list[SweepScenario],
        part: np.ndarray,
        start: int,
        stop: int,
        *,
        scored: int,
        total: int,
        running_best: dict[str, Any],
        include_values: bool,
    ) -> dict[str, Any]:
        """Build one ``sweep_chunk`` event payload, folding the chunk's best
        scenario into the caller's ``running_best`` accumulator.

        Strictly-better comparisons keep tie resolution aligned with the
        final frontier's stable ranking when chunks arrive in enumeration
        order (the serial path); out-of-order unit completions may break a
        tie differently, which only affects the advisory live view — the
        terminal result is always the exactly-ranked frontier.
        """
        part = np.asarray(part, dtype=np.float64)
        local = int(np.argmax(part) if self.goal == "maximize" else np.argmin(part))
        value = float(part[local])
        incumbent = running_best.get("kpi_value")
        if incumbent is None or (
            value > incumbent if self.goal == "maximize" else value < incumbent
        ):
            scenario = scenarios[start + local]
            running_best.update(
                scenario_index=scenario.scenario_index,
                kpi_value=value,
                label=self.space.label(scenario),
            )
        return {
            "start": int(start),
            "stop": int(stop),
            "scored": int(scored),
            "total": int(total),
            "kpi_values": [float(v) for v in part] if include_values else None,
            "best": dict(running_best),
        }

    def _score_units(
        self,
        scenarios: list[SweepScenario],
        checkpoint: Callable[[float], None] | None,
        executor,
        scored_share: float,
        emit: Callable[..., None] | None = None,
    ) -> np.ndarray | None:
        """Score the space as contiguous sub-range units on a process executor.

        Exhaustive kernel-eligible grids are partitioned along the canonical
        *outermost* axis (the first of the driver-name-sorted axes): its
        levels vary slowest in :meth:`ScenarioSpace.scenarios`, so a level
        block ``[lo, hi)`` is exactly the enumeration slice
        ``[lo * inner, hi * inner)`` and the grid kernel scores each block
        independently.  Other spaces split into enumeration-index ranges that
        workers re-enumerate deterministically.  Either way the per-unit KPI
        arrays concatenate in dispatch order into the identical enumeration-
        order surface the serial ``_score`` produces, so frontier, marginals,
        and cohort ranking downstream are bitwise unchanged.

        Returns ``None`` when the space cannot travel over the wire (callable
        constraints don't serialise) — the caller then stays in-process.
        """
        space = self.space
        payload = space.to_dict()
        try:
            ScenarioSpace.from_dict(payload)
        except (TypeError, ValueError, KeyError):
            return None
        if grid_kernel_applies(self.manager, space):
            head = space.axes[0]
            levels = len(head.amounts)
            inner = space.size // levels
            blocks = split_ranges(levels, executor.workers)
            units = [
                ("sweep_grid_block", {"space": payload, "lo": lo, "hi": hi})
                for lo, hi in blocks
            ]
            weights = [(hi - lo) * inner for lo, hi in blocks]
            enum_ranges = [(lo * inner, hi * inner) for lo, hi in blocks]
        else:
            ranges = split_ranges(len(scenarios), executor.workers)
            units = [
                ("sweep_slice", {"space": payload, "start": start, "stop": stop})
                for start, stop in ranges
            ]
            weights = [stop - start for start, stop in ranges]
            enum_ranges = ranges
        # on_unit_done fires on this (the job's) thread from the run_units
        # waiter loop, so the running-best accumulator needs no locking even
        # though units complete in any order across worker processes
        running_best: dict[str, Any] = {}
        scored_units = {"count": 0}

        def on_unit_done(unit_index: int, result) -> None:
            start, stop = enum_ranges[unit_index]
            scored_units["count"] += stop - start
            emit(
                "sweep_chunk",
                self._frontier_chunk(
                    scenarios,
                    np.asarray(result, dtype=np.float64),
                    start,
                    stop,
                    scored=scored_units["count"],
                    total=len(scenarios),
                    running_best=running_best,
                    include_values=False,
                ),
            )

        parts = executor.run_units(
            self.manager,
            units,
            checkpoint=checkpoint,
            progress=(0.0, scored_share),
            weights=weights,
            on_unit_done=on_unit_done if emit is not None else None,
        )
        return np.concatenate([np.asarray(part, dtype=np.float64) for part in parts])

    def _rank(self, kpis: np.ndarray) -> np.ndarray:
        """Scenario order best-to-worst (stable, so ties keep enumeration order)."""
        keys = -kpis if self.goal == "maximize" else kpis
        return np.argsort(keys, kind="stable")

    def _frontier(
        self,
        scenarios: list[SweepScenario],
        kpis: np.ndarray,
        order: np.ndarray,
        baseline: float,
    ) -> tuple[SweepEntry, ...]:
        entries = []
        for rank, position in enumerate(order[: self.top_k], start=1):
            scenario = scenarios[int(position)]
            kpi_value = float(kpis[int(position)])
            entries.append(
                SweepEntry(
                    rank=rank,
                    scenario_index=scenario.scenario_index,
                    amounts={
                        axis.driver: amount
                        for axis, amount in zip(self.space.axes, scenario.amounts)
                    },
                    kpi_value=kpi_value,
                    uplift=kpi_value - baseline,
                    label=self.space.label(scenario),
                )
            )
        return tuple(entries)

    def _marginals(
        self, scenarios: list[SweepScenario], kpis: np.ndarray
    ) -> dict[str, list[dict[str, Any]]]:
        """Mean/best KPI at every level of every axis.

        Marginalising over all scored scenarios answers "holding everything
        else mixed, how does the KPI respond to this one dial" — the sweep
        analogue of comparison analysis, but over the joint space instead of
        one-driver-at-a-time.
        """
        best = np.max if self.goal == "maximize" else np.min
        amounts = np.array([s.amounts for s in scenarios])
        profiles: dict[str, list[dict[str, Any]]] = {}
        for column, axis in enumerate(self.space.axes):
            points = []
            for amount in axis.amounts:
                mask = amounts[:, column] == amount
                count = int(mask.sum())
                points.append(
                    {
                        "amount": float(amount),
                        "count": count,
                        "mean_kpi": float(kpis[mask].mean()) if count else None,
                        "best_kpi": float(best(kpis[mask])) if count else None,
                    }
                )
            profiles[axis.driver] = points
        return profiles

    # ------------------------------------------------------------------ #
    def _cohort_breakdown(
        self,
        scenarios: list[SweepScenario],
        top: tuple[SweepEntry, ...],
        checkpoint: Callable[[float], None] | None,
    ) -> dict[str, Any]:
        """Per-cohort KPI of the frontier scenarios.

        One :func:`~repro.frame.kernels.group_index` pass factorizes the
        cohort column; baseline and frontier predictions are then aggregated
        per group straight from the index arrays — no per-cohort sub-frame or
        model is ever built (the breakdown reads the *global* model's per-row
        predictions through the cohort partition).
        """
        manager = self.manager
        frame = manager.frame
        column = frame.column(self.cohort_column)
        index = group_index([column])
        labels = [str(column[int(row)]) for row in index.first_rows]
        baseline_rows = manager.baseline_rows()
        by_scenario = []
        scenario_of = {s.scenario_index: s for s in scenarios}
        baseline_matrix = manager.driver_matrix()
        for position, entry in enumerate(top, start=1):
            scenario = scenario_of[entry.scenario_index]
            matrix = self.space.perturbations(scenario).apply_to_matrix(
                baseline_matrix, manager.drivers
            )
            rows = manager.predict_rows_matrix(matrix)
            by_scenario.append(
                {
                    "scenario_index": entry.scenario_index,
                    "rank": entry.rank,
                    "per_cohort": dict(
                        zip(labels, self._aggregate_groups(rows, index))
                    ),
                }
            )
            if checkpoint is not None:
                checkpoint(0.9 + 0.1 * position / len(top))
        return {
            "column": self.cohort_column,
            "cohort_sizes": dict(zip(labels, index.counts.tolist())),
            "baseline": dict(zip(labels, self._aggregate_groups(baseline_rows, index))),
            "scenarios": by_scenario,
        }

    def _aggregate_groups(self, rows: np.ndarray, index) -> list[float]:
        """Per-group KPI aggregation matching :meth:`~repro.core.kpi.KPI.aggregate`."""
        kpi = self.manager.kpi
        counts = index.counts.astype(np.float64)
        if kpi.aggregation == "rate":
            sums = np.bincount(
                index.codes, weights=np.clip(rows, 0.0, 1.0), minlength=index.n_groups
            )
            return (sums / counts * 100.0).tolist()
        sums = np.bincount(index.codes, weights=rows, minlength=index.n_groups)
        if kpi.aggregation == "sum":
            return sums.tolist()
        return (sums / counts).tolist()


def run_sweep(
    manager: ModelManager,
    space: ScenarioSpace,
    *,
    goal: str = "maximize",
    top_k: int = 10,
    cohort_column: str | None = None,
    checkpoint: Callable[[float], None] | None = None,
    executor=None,
    emit: Callable[..., None] | None = None,
) -> SweepResult:
    """Functional entry point mirroring the other analysis runners."""
    planner = SweepPlanner(
        manager, space, goal=goal, top_k=top_k, cohort_column=cohort_column
    )
    return planner.run(checkpoint=checkpoint, executor=executor, emit=emit)
