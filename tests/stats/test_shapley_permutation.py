"""Unit and property tests for Shapley values and permutation importance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import LinearRegression, RandomForestClassifier
from repro.stats import global_shapley_importance, permutation_importance, shapley_values


@pytest.fixture(scope="module")
def linear_model_and_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 3))
    y = 4.0 * X[:, 0] - 2.0 * X[:, 1] + 0.0 * X[:, 2]
    return LinearRegression().fit(X, y), X, y


class TestShapleyValues:
    def test_shape(self, linear_model_and_data):
        model, X, _ = linear_model_and_data
        values = shapley_values(model, X, X[:5], n_permutations=10, random_state=0)
        assert values.shape == (5, 3)

    def test_efficiency_property_for_linear_model(self, linear_model_and_data):
        """For a linear model, attributions sum to prediction minus the mean prediction."""
        model, X, _ = linear_model_and_data
        explain = X[:10]
        values = shapley_values(model, X, explain, n_permutations=150, random_state=0)
        total_attribution = values.sum(axis=1)
        expected = model.predict(explain) - model.predict(X).mean()
        # Monte-Carlo estimate: compare on average, not element-wise
        assert np.abs(total_attribution - expected).mean() < 0.35

    def test_exact_attribution_for_linear_model(self, linear_model_and_data):
        """Linear-model Shapley values are coef * (x - E[x]); check roughly."""
        model, X, _ = linear_model_and_data
        explain = X[:20]
        values = shapley_values(model, X, explain, n_permutations=150, random_state=1)
        expected = model.coef_ * (explain - X.mean(axis=0))
        assert np.abs(values - expected).mean() < 0.3

    def test_irrelevant_feature_gets_near_zero_attribution(self, linear_model_and_data):
        model, X, _ = linear_model_and_data
        values = shapley_values(model, X, X[:30], n_permutations=30, random_state=2)
        assert np.abs(values[:, 2]).mean() < 0.2

    def test_classifier_uses_probabilities(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(float)
        model = RandomForestClassifier(n_estimators=10, max_depth=4, random_state=0).fit(X, y)
        values = shapley_values(model, X, X[:10], n_permutations=10, random_state=0)
        # attributions of a probability live in [-1, 1]
        assert np.all(np.abs(values) <= 1.0 + 1e-9)
        assert np.abs(values[:, 0]).mean() > np.abs(values[:, 1]).mean()

    def test_input_validation(self, linear_model_and_data):
        model, X, _ = linear_model_and_data
        with pytest.raises(ValueError):
            shapley_values(model, X, X[:2, :2])
        with pytest.raises(ValueError):
            shapley_values(model, X, X[:2], n_permutations=0)

    def test_plain_callable_model(self):
        X = np.random.default_rng(4).normal(size=(50, 2))
        values = shapley_values(lambda A: A[:, 0], X, X[:5], n_permutations=20, random_state=0)
        assert np.abs(values[:, 1]).max() < 1e-9


class TestGlobalShapleyImportance:
    def test_signed_importances_in_range_and_ordered(self, linear_model_and_data):
        model, X, _ = linear_model_and_data
        importances = global_shapley_importance(
            model, X, n_samples=40, n_permutations=20, random_state=0
        )
        assert importances.shape == (3,)
        assert np.all(np.abs(importances) <= 1.0 + 1e-9)
        assert importances[0] > 0  # positive coefficient
        assert importances[1] < 0  # negative coefficient
        assert abs(importances[0]) > abs(importances[2])

    def test_unsigned_importances_sum_to_one(self, linear_model_and_data):
        model, X, _ = linear_model_and_data
        importances = global_shapley_importance(
            model, X, n_samples=30, n_permutations=10, signed=False, random_state=0
        )
        assert importances.sum() == pytest.approx(1.0)
        assert np.all(importances >= 0)


class TestPermutationImportance:
    def test_signal_feature_dominates(self, linear_model_and_data):
        model, X, y = linear_model_and_data
        result = permutation_importance(model, X, y, n_repeats=3, random_state=0)
        importances = result["importances_mean"]
        assert importances[0] > importances[2]
        assert importances[1] > importances[2]
        assert importances[2] == pytest.approx(0.0, abs=0.05)

    def test_baseline_score_reported(self, linear_model_and_data):
        model, X, y = linear_model_and_data
        result = permutation_importance(model, X, y, n_repeats=2, random_state=0)
        assert result["baseline_score"] == pytest.approx(1.0)

    def test_custom_scoring(self, linear_model_and_data):
        model, X, y = linear_model_and_data
        result = permutation_importance(
            model,
            X,
            y,
            n_repeats=2,
            scoring=lambda m, X_, y_: -float(np.mean((m.predict(X_) - y_) ** 2)),
            random_state=0,
        )
        assert result["importances_mean"].shape == (3,)

    def test_validation(self, linear_model_and_data):
        model, X, y = linear_model_and_data
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError):
            permutation_importance(model, X.ravel(), y)
