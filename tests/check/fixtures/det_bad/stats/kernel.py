"""Bad fixture: violates DET001-DET004 in a result-producing module."""

import random
import time

import numpy as np


def summarize(values, weights):
    ordered = []
    # DET001: set iteration order depends on hash seeding
    for value in set(values):
        ordered.append(value)
    # DET002: unseeded global RNG calls
    jitter = random.random() + np.random.uniform()
    # DET003: wall-clock read flowing into the result payload
    stamp = time.time()
    # DET004: dict comprehension re-orders its input through a set
    mapping = {key: weights.get(key, 0.0) for key in set(values)}
    return {"ordered": ordered, "jitter": jitter, "stamp": stamp, "mapping": mapping}
