"""Feature preprocessing: scalers and encoders.

The paper's driver-importance view normalises importances into ``[-1, 1]`` and
the linear model needs comparable coefficient magnitudes across drivers whose
units differ wildly (dollars of TV spend vs counts of emails opened), so the
model manager standardises drivers before fitting linear models.  Encoders
handle categorical columns if a use case keeps them as model inputs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import BaseEstimator, NotFittedError, TransformerMixin, check_array

__all__ = ["StandardScaler", "MinMaxScaler", "LabelEncoder", "OneHotEncoder"]


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardise features to zero mean and unit variance.

    Constant features are left unscaled (divide by 1) so they do not blow up
    to NaN, which matters when a business user filters the dataset down to a
    slice where a driver no longer varies.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X, y=None) -> "StandardScaler":
        """Learn per-feature means and standard deviations."""
        X = check_array(X, allow_1d=True)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None:
            raise NotFittedError("StandardScaler is not fitted yet")
        X = check_array(X, allow_1d=True)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the standardisation."""
        if self.mean_ is None:
            raise NotFittedError("StandardScaler is not fitted yet")
        X = check_array(X, allow_1d=True)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features into ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = feature_range
        if low >= high:
            raise ValueError("feature_range must be an increasing pair")
        self.feature_range = feature_range
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, X, y=None) -> "MinMaxScaler":
        """Learn per-feature minima and maxima."""
        X = check_array(X, allow_1d=True)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned scaling."""
        if self.data_min_ is None:
            raise NotFittedError("MinMaxScaler is not fitted yet")
        X = check_array(X, allow_1d=True)
        low, high = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0, 1.0, span)
        unit = (X - self.data_min_) / span
        return unit * (high - low) + low

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the scaling."""
        if self.data_min_ is None:
            raise NotFittedError("MinMaxScaler is not fitted yet")
        X = check_array(X, allow_1d=True)
        low, high = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0, 1.0, span)
        unit = (X - low) / (high - low)
        return unit * span + self.data_min_


class LabelEncoder(BaseEstimator):
    """Encode arbitrary labels as integers ``0..n_classes-1``."""

    def __init__(self) -> None:
        self.classes_: list[Any] | None = None
        self._index: dict[Any, int] | None = None

    def fit(self, values) -> "LabelEncoder":
        """Learn the label vocabulary (sorted by string representation)."""
        unique = sorted({v for v in values}, key=lambda v: str(v))
        self.classes_ = unique
        self._index = {value: i for i, value in enumerate(unique)}
        return self

    def transform(self, values) -> np.ndarray:
        """Map labels to their integer codes."""
        if self._index is None:
            raise NotFittedError("LabelEncoder is not fitted yet")
        try:
            return np.array([self._index[v] for v in values], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from exc

    def fit_transform(self, values) -> np.ndarray:
        """Fit then transform."""
        return self.fit(values).transform(values)

    def inverse_transform(self, codes) -> list[Any]:
        """Map integer codes back to the original labels."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted yet")
        return [self.classes_[int(code)] for code in codes]


class OneHotEncoder(BaseEstimator):
    """One-hot encode a single categorical value sequence.

    Produces one output column per category, named ``<prefix>=<category>``
    via :meth:`feature_names`, so encoded drivers stay legible in the driver
    importance view.
    """

    def __init__(self, drop_first: bool = False) -> None:
        self.drop_first = drop_first
        self.categories_: list[Any] | None = None

    def fit(self, values, y=None) -> "OneHotEncoder":
        """Learn the category vocabulary."""
        self.categories_ = sorted({v for v in values}, key=lambda v: str(v))
        return self

    def transform(self, values) -> np.ndarray:
        """Encode ``values`` into a (n_samples, n_output) 0/1 matrix."""
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder is not fitted yet")
        categories = self.categories_[1:] if self.drop_first else self.categories_
        matrix = np.zeros((len(list(values)), len(categories)))
        values = list(values)
        for i, value in enumerate(values):
            if value not in self.categories_:
                raise ValueError(f"unseen category {value!r}")
            if value in categories:
                matrix[i, categories.index(value)] = 1.0
        return matrix

    def fit_transform(self, values, y=None) -> np.ndarray:
        """Fit then transform."""
        return self.fit(values).transform(values)

    def feature_names(self, prefix: str) -> list[str]:
        """Column names for the encoded output."""
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder is not fitted yet")
        categories = self.categories_[1:] if self.drop_first else self.categories_
        return [f"{prefix}={category}" for category in categories]
