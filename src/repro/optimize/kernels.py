"""Covariance kernels for the Gaussian-process surrogate.

gp_minimize in Scikit-Optimize defaults to a Matérn 5/2 kernel over normalised
inputs with a white-noise term; we provide that plus the squared-exponential
(RBF) alternative and the constant/white building blocks needed to compose
them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Kernel", "RBFKernel", "Matern52Kernel", "ConstantKernel", "SumKernel", "WhiteKernel"]


def _pairwise_sq_dists(X: np.ndarray, Y: np.ndarray, length_scale: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of X and Y after length scaling."""
    Xs = X / length_scale
    Ys = Y / length_scale
    x_norm = np.sum(Xs**2, axis=1)[:, None]
    y_norm = np.sum(Ys**2, axis=1)[None, :]
    sq = x_norm + y_norm - 2.0 * Xs @ Ys.T
    return np.maximum(sq, 0.0)


class Kernel:
    """Base class: a positive-definite covariance function."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``self(X, X)`` without forming the full matrix."""
        return np.diag(self(X, X))

    def __add__(self, other: "Kernel") -> "Kernel":
        return SumKernel(self, other)


class RBFKernel(Kernel):
    """Squared-exponential kernel ``variance * exp(-0.5 * d² / ℓ²)``."""

    def __init__(self, length_scale: float | np.ndarray = 1.0, variance: float = 1.0) -> None:
        self.length_scale = np.atleast_1d(np.asarray(length_scale, dtype=np.float64))
        if np.any(self.length_scale <= 0):
            raise ValueError("length_scale must be positive")
        if variance <= 0:
            raise ValueError("variance must be positive")
        self.variance = float(variance)

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = np.atleast_2d(X)
        Y = X if Y is None else np.atleast_2d(Y)
        sq = _pairwise_sq_dists(X, Y, self.length_scale)
        return self.variance * np.exp(-0.5 * sq)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(X).shape[0], self.variance)


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness ν = 5/2 (skopt's default surrogate)."""

    def __init__(self, length_scale: float | np.ndarray = 1.0, variance: float = 1.0) -> None:
        self.length_scale = np.atleast_1d(np.asarray(length_scale, dtype=np.float64))
        if np.any(self.length_scale <= 0):
            raise ValueError("length_scale must be positive")
        if variance <= 0:
            raise ValueError("variance must be positive")
        self.variance = float(variance)

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = np.atleast_2d(X)
        Y = X if Y is None else np.atleast_2d(Y)
        distance = np.sqrt(_pairwise_sq_dists(X, Y, self.length_scale))
        sqrt5_d = np.sqrt(5.0) * distance
        return self.variance * (1.0 + sqrt5_d + 5.0 / 3.0 * distance**2) * np.exp(-sqrt5_d)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(X).shape[0], self.variance)


class ConstantKernel(Kernel):
    """Constant covariance (a learned mean offset)."""

    def __init__(self, constant: float = 1.0) -> None:
        if constant < 0:
            raise ValueError("constant must be non-negative")
        self.constant = float(constant)

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = np.atleast_2d(X)
        Y = X if Y is None else np.atleast_2d(Y)
        return np.full((X.shape[0], Y.shape[0]), self.constant)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(X).shape[0], self.constant)


class WhiteKernel(Kernel):
    """Observation-noise kernel: adds ``noise`` on the diagonal only."""

    def __init__(self, noise: float = 1e-6) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.noise = float(noise)

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = np.atleast_2d(X)
        if Y is None or Y is X:
            return self.noise * np.eye(X.shape[0])
        Y = np.atleast_2d(Y)
        return np.zeros((X.shape[0], Y.shape[0]))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.atleast_2d(X).shape[0], self.noise)


class SumKernel(Kernel):
    """Sum of two kernels."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Y) + self.right(X, Y)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)
