"""AST plumbing shared by the ``repro check`` rules.

The rule modules all work off the same parsed view of a source tree: a
:class:`ModuleInfo` per file (path, source, AST with parent links) plus a
handful of helpers for the recurring questions — "is this ``with`` statement
holding a lock?", "which function/class encloses this node?", "what are the
string keys of this registry dict?".  Parent links are attached once at load
time (``node.repro_parent``) so rules can walk *up* the tree, which
:mod:`ast` does not support natively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "ModuleInfo",
    "attach_parents",
    "enclosing",
    "enclosing_class",
    "enclosing_function",
    "is_lock_expr",
    "iter_parents",
    "load_module",
    "lock_keys_of_with",
    "str_constants",
    "string_dict_keys",
    "walk_same_scope",
]

#: Node types that open a new runtime scope: code inside them does not run
#: as part of the enclosing block, so lexical analyses must not descend.
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass
class ModuleInfo:
    """One parsed source file of the project under analysis."""

    path: Path
    #: Path relative to the analysis root, with ``/`` separators.  Rules match
    #: modules by suffix (``endswith("server/protocol.py")``) so fixture trees
    #: can mimic the real layout without the ``repro/`` prefix.
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


def load_module(path: Path, relpath: str) -> ModuleInfo:
    """Parse ``path`` into a :class:`ModuleInfo` with parent links attached."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    attach_parents(tree)
    return ModuleInfo(path=path, relpath=relpath, source=source, tree=tree)


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``repro_parent`` link to its parent."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.repro_parent = parent  # type: ignore[attr-defined]


def iter_parents(node: ast.AST) -> Iterator[ast.AST]:
    """Yield the ancestors of ``node``, nearest first."""
    current = getattr(node, "repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "repro_parent", None)


def enclosing(node: ast.AST, types: tuple[type, ...]) -> ast.AST | None:
    """The nearest ancestor of ``node`` that is one of ``types``."""
    for parent in iter_parents(node):
        if isinstance(parent, types):
            return parent
    return None


def enclosing_function(node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The nearest enclosing function definition, if any."""
    found = enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return found  # type: ignore[return-value]


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    """The nearest enclosing class definition, if any."""
    found = enclosing(node, (ast.ClassDef,))
    return found  # type: ignore[return-value]


def walk_same_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested scopes.

    Code inside nested ``def``/``lambda``/``class`` bodies does not execute
    as part of ``root``'s block, so lexical analyses (is this call made while
    the lock is held?) must skip it.  The root itself may be a function.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_TYPES):
            stack.extend(ast.iter_child_nodes(node))


def is_lock_expr(expr: ast.expr) -> bool:
    """Whether ``expr`` syntactically names a lock.

    Project convention: every mutex attribute has ``lock`` in its final name
    (``self._lock``, ``entry.lock``, ``self._log_lock``), so the analyzer
    keys off that rather than type inference.
    """
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    if isinstance(expr, ast.Name):
        return "lock" in expr.id.lower()
    return False


def lock_keys_of_with(node: ast.With, class_name: str | None) -> list[tuple[str, ast.expr]]:
    """The locks acquired by a ``with`` statement, as ``(key, expr)`` pairs.

    Keys normalise ``self.<attr>`` to ``<ClassName>.<attr>`` so the same lock
    gets the same key across methods (and, for well-known classes, across
    modules); other expressions key on their source text.
    """
    keys: list[tuple[str, ast.expr]] = []
    for item in node.items:
        expr = item.context_expr
        if not is_lock_expr(expr):
            continue
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and class_name
        ):
            keys.append((f"{class_name}.{expr.attr}", expr))
        else:
            keys.append((ast.unparse(expr), expr))
    return keys


def str_constants(node: ast.expr | None) -> list[str] | None:
    """String elements of a tuple/list/set literal or ``frozenset({...})`` call.

    Returns ``None`` when ``node`` is not a recognised all-string container,
    so registry rules can skip rather than misreport on exotic shapes.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set", "tuple", "list") and len(node.args) == 1:
            return str_constants(node.args[0])
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            values.append(element.value)
        return values
    return None


def string_dict_keys(node: ast.expr | None) -> list[str] | None:
    """String keys of a dict literal (``None`` for anything else)."""
    if not isinstance(node, ast.Dict):
        return None
    keys = []
    for key in node.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return keys
