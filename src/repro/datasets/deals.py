"""Synthetic deal-closing dataset (use case U3).

The paper's walk-through dataset has one row per prospective customer, one
column per activity count ("Chats, Meetings attended, etc."), an ``Account``
text column excluded from modelling, and a binary ``Deal Closed?`` label.  The
driver-importance view reports the three most important drivers as *Open
Marketing Email*, *Renewal*, and *Call*, and the three least important as
*LinkedIn Contact*, *Initiate New Contact*, and *Meeting*; the baseline
deal-closing rate is ≈42%, a +40% perturbation of Open Marketing Email lifts
it to 43.24%, and constraining that driver to +40%..+80% while freely
optimising the rest reaches 90.54%.

Sigma's real prospect data is proprietary, so this generator plants exactly
that structure: activity counts drawn from Poisson distributions and a latent
conversion score whose weights follow the paper's importance ordering, with a
threshold calibrated to a ≈42% base closing rate.  The *shape* of every
Figure 2 number is therefore reproducible; absolute values differ because the
underlying population is synthetic.
"""

from __future__ import annotations

import numpy as np

from ..frame import Column, DataFrame

__all__ = [
    "DEAL_DRIVERS",
    "DEAL_KPI",
    "DEAL_TEXT_COLUMNS",
    "DRIVER_WEIGHTS",
    "load_deal_closing",
]

#: KPI column name (discrete / binary).
DEAL_KPI = "Deal Closed?"

#: Textual columns excluded from model training (paper view D).
DEAL_TEXT_COLUMNS = ("Account",)

#: Activity-count drivers in the synthetic prospect dataset.
DEAL_DRIVERS = (
    "Open Marketing Email",
    "Renewal",
    "Call",
    "Demo Attended",
    "Trial Signup",
    "Chat",
    "Campaign Participation",
    "Email Sent",
    "Webinar Attended",
    "LinkedIn Contact",
    "Initiate New Contact",
    "Meeting",
)

#: Latent conversion-score weight of each driver, per unit of activity count.
#: The weights are chosen so each driver's contribution to the score variance
#: (``weight² × mean count`` for Poisson counts) reproduces the paper's
#: reported ranking: Open Marketing Email, Renewal and Call carry the most
#: signal; LinkedIn Contact, Initiate New Contact and Meeting carry
#: essentially none.
DRIVER_WEIGHTS = {
    "Open Marketing Email": 0.30,
    "Renewal": 0.50,
    "Call": 0.27,
    "Demo Attended": 0.32,
    "Trial Signup": 0.36,
    "Chat": 0.13,
    "Campaign Participation": 0.14,
    "Email Sent": 0.06,
    "Webinar Attended": 0.14,
    "LinkedIn Contact": 0.025,
    "Initiate New Contact": 0.03,
    "Meeting": 0.02,
}

#: Mean activity count per prospect for each driver.
_ACTIVITY_MEANS = {
    "Open Marketing Email": 6.0,
    "Renewal": 1.2,
    "Call": 3.5,
    "Demo Attended": 1.5,
    "Trial Signup": 0.8,
    "Chat": 4.0,
    "Campaign Participation": 2.0,
    "Email Sent": 8.0,
    "Webinar Attended": 1.0,
    "LinkedIn Contact": 2.5,
    "Initiate New Contact": 1.8,
    "Meeting": 2.2,
}

#: Target baseline closing rate (the paper's blue bar sits near 42%).
_TARGET_BASE_RATE = 0.42


def load_deal_closing(
    n_prospects: int = 1200, *, random_state: int = 7, noise: float = 1.0
) -> DataFrame:
    """Generate the synthetic deal-closing prospect dataset.

    Parameters
    ----------
    n_prospects:
        Number of prospect rows.
    random_state:
        Seed; the default reproduces the numbers quoted in EXPERIMENTS.md.
    noise:
        Scale of the Gaussian noise added to the latent conversion score
        (larger values weaken every driver's effect).

    Returns
    -------
    DataFrame
        Columns: ``Account`` (string), one count column per entry of
        :data:`DEAL_DRIVERS`, and the boolean KPI ``Deal Closed?``.
    """
    if n_prospects < 10:
        raise ValueError("n_prospects must be at least 10")
    rng = np.random.default_rng(random_state)

    counts = {
        driver: rng.poisson(_ACTIVITY_MEANS[driver], size=n_prospects).astype(np.int64)
        for driver in DEAL_DRIVERS
    }

    score = np.zeros(n_prospects)
    for driver in DEAL_DRIVERS:
        score += DRIVER_WEIGHTS[driver] * counts[driver]
    score += rng.normal(0.0, noise, size=n_prospects)

    threshold = np.quantile(score, 1.0 - _TARGET_BASE_RATE)
    closed = score > threshold

    columns = [
        Column("Account", [f"Account-{i:05d}" for i in range(n_prospects)], dtype="string")
    ]
    columns.extend(Column(driver, counts[driver], dtype="int") for driver in DEAL_DRIVERS)
    columns.append(Column(DEAL_KPI, closed, dtype="bool"))
    return DataFrame(columns)
