"""P2 (performance): the async analysis engine vs the blocking protocol.

The ROADMAP's north star — heavy concurrent traffic — needs the backend to
keep answering while long sweeps run.  This benchmark drives the workload of
:func:`repro.engine.bench.run_engine_benchmark`: four distinct comparison
sweeps on four sessions, submitted to a 4-worker pool, against two serialized
baselines (sequential synchronous requests, i.e. the seed's blocking
behaviour, and the same jobs on a 1-worker pool).  It also verifies the two
correctness properties the engine may never trade for speed:

* every job payload is **bitwise identical** to the synchronous response for
  the same analysis — the chunked, checkpointed runners may not move a ulp;
* identical sensitivity submissions made while their session is busy
  **coalesce** onto one job and execute once.

The benchmark runs once per available executor: the thread pool, whose
``worker_speedup`` the GIL caps near 1x, and (where ``spawn`` exists) the
process pool, which escapes the GIL and must clear a real concurrency floor.
Floors are CPU-aware: each asserted floor scales with
``min(workers, available_cpus())``, and the pure-concurrency assertion is
skipped entirely when only one CPU is usable — there is no parallelism to
measure there, only scheduling overhead.

The headline ``speedup`` combines worker concurrency with the chunked
runners' cache-locality win (the one-shot sweep stacks every perturbed
matrix into one huge kernel traversal whose working set falls out of cache),
so it holds even on one core.  Timings are written to ``BENCH_engine.json``
for the thread run and ``BENCH_engine_process.json`` for the process run
(paths overridable via ``BENCH_ENGINE_OUTPUT`` / ``BENCH_ENGINE_PROCESS_OUTPUT``);
the CI ``bench`` job uploads both files as workflow artifacts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import ProcessExecutor
from repro.engine.bench import available_cpus, run_engine_benchmark

from .conftest import print_table

USE_CASE = "deal_closing"
ROWS = 1000
N_JOBS = 4
WORKERS = 4
AMOUNTS_PER_JOB = 10
COALESCE_SUBMISSIONS = 6

#: Executors exercised by this benchmark; the process pool only where the
#: ``spawn`` start method exists (everywhere the engine itself would not
#: fall back to threads).
EXECUTORS = ["thread"] + (["process"] if ProcessExecutor.available() else [])

#: Output artifact per executor (thread keeps the historical name so the
#: regression baseline stays comparable across this change).
OUTPUT_ENV = {
    "thread": ("BENCH_ENGINE_OUTPUT", "BENCH_engine.json"),
    "process": ("BENCH_ENGINE_PROCESS_OUTPUT", "BENCH_engine_process.json"),
}


def speedup_floor(executor: str) -> float:
    """Floor on the headline speedup (async pool vs sequential synchronous
    requests).  On >=2 usable cores the chunked runners plus real concurrency
    must clear 2x; on a single core only the chunking win remains (measured
    ~3.5x for threads; the process pool adds queue/IPC overhead on top, so
    its single-core floor is a looser overhead guard)."""
    if available_cpus() >= 2:
        return 2.0
    return 1.5 if executor == "thread" else 1.2


def worker_speedup_floor(executor: str) -> float | None:
    """Floor on pure worker concurrency (4 workers vs 1 worker, identical
    jobs), scaled by the CPUs the process may actually use.

    ``None`` skips the assertion: with one usable core there is no
    parallelism to measure.  With ``effective`` cores, threads must stay
    above a modest fraction (the GIL serializes the Python layers; numpy
    releases it inside kernels) while processes must realise most of the
    hardware: 0.625 x effective puts the ISSUE's >=2.5x at 4 cores.
    """
    effective = min(WORKERS, available_cpus())
    if effective <= 1:
        return None
    fraction = 0.625 if executor == "process" else 0.375
    return max(1.0, fraction * effective)


@pytest.mark.parametrize("executor", EXECUTORS)
def test_concurrent_sweeps_speedup_coalescing_and_artifact(executor):
    summary = run_engine_benchmark(
        use_case=USE_CASE,
        rows=ROWS,
        n_jobs=N_JOBS,
        workers=WORKERS,
        amounts_per_job=AMOUNTS_PER_JOB,
        coalesce_submissions=COALESCE_SUBMISSIONS,
        seed=0,
        executor=executor,
    )
    min_speedup = speedup_floor(executor)
    min_worker_speedup = worker_speedup_floor(executor)
    summary["min_speedup_enforced"] = min_speedup
    summary["min_worker_speedup_enforced"] = min_worker_speedup

    print_table(
        f"Async engine ({executor}): 4 concurrent sweeps vs serialized execution",
        [
            {
                "executor": summary["executor"],
                "cpus": summary["cpu_count"],
                "serial_sync_s": round(summary["serial_s"], 3),
                "serial_1worker_s": round(summary["engine_serial_s"], 3),
                "parallel_4worker_s": round(summary["parallel_s"], 3),
                "speedup": round(summary["speedup"], 2),
                "worker_speedup": round(summary["worker_speedup"], 2),
            }
        ],
    )

    assert summary["executor"] == executor

    # correctness first: payloads bitwise-equal to the synchronous path
    assert summary["bitwise_equal"], "job payloads diverged from sync responses"

    # coalescing: N identical submissions -> one job, one execution —
    # preserved across executors
    coalescing = summary["coalescing"]
    assert coalescing["distinct_jobs"] == 1, coalescing
    assert coalescing["attached"] == COALESCE_SUBMISSIONS, coalescing
    assert coalescing["coalesced_flags"] == [False] + [True] * (
        COALESCE_SUBMISSIONS - 1
    ), coalescing
    assert coalescing["result_matches_sync"], coalescing
    # one execution of the sensitivity analysis serves every submitter: the
    # engine ran exactly the 4 sweeps, 1 blocker, and 1 coalesced job (plus
    # the untimed async warm round on the process pool)
    warm_jobs = N_JOBS if executor == "process" else 0
    assert summary["engine"]["executed_total"] == N_JOBS + 2 + warm_jobs, (
        summary["engine"]
    )
    assert summary["engine"]["coalesced_total"] == COALESCE_SUBMISSIONS - 1

    # the stats block must report the executor actually in effect
    assert summary["engine"]["executor"]["kind"] == executor

    # wall-clock: materially faster than serialized execution
    assert summary["speedup"] >= min_speedup, (
        f"{executor} speedup {summary['speedup']:.2f}x below the "
        f"{min_speedup}x floor ({summary['cpu_count']} usable cpus)"
    )
    if min_worker_speedup is None:
        print(
            f"  (worker_speedup {summary['worker_speedup']:.2f}x recorded, "
            "not asserted: single usable CPU)"
        )
    else:
        assert summary["worker_speedup"] >= min_worker_speedup, (
            f"{executor} worker speedup {summary['worker_speedup']:.2f}x below "
            f"the {min_worker_speedup}x floor ({summary['cpu_count']} usable cpus)"
        )

    env_var, default = OUTPUT_ENV[executor]
    path = os.environ.get(env_var, default)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    assert os.path.exists(path)
