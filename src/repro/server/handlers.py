"""Request handlers: one per backend action.

Session-scoped handlers (:data:`HANDLERS`) receive one mutable
:class:`ServerState` — the analysis the request's ``session_id`` routed to —
plus the request parameters, and return a JSON-safe payload dict.
Server-scoped handlers (:data:`SERVER_HANDLERS`) receive the
:class:`~repro.server.app.SystemDServer` itself and manage the session
registry, the shared model cache, and the async analysis engine.  Validation
errors raise :class:`~repro.server.protocol.ProtocolError` so the dispatcher
can turn them into error responses without crashing the server.

The heavy analysis handlers accept an optional ``checkpoint`` callable that
they thread into the chunked analysis runners; the synchronous dispatcher
never passes one (leaving the original code paths byte-for-byte untouched),
while the async engine's workers invoke the same handlers through
:data:`JOB_HANDLERS` with a :class:`~repro.engine.job.JobContext` checkpoint
so jobs publish partial progress and honour cancellation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..core import DriverBound, ModelCache, PerturbationSet, WhatIfSession
from ..datasets import get_use_case, list_use_cases
from .protocol import ConflictError, NotFoundError, ProtocolError
from .serialization import frame_preview, to_json_safe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.job import JobContext
    from .app import SystemDServer

__all__ = ["ServerState", "HANDLERS", "SERVER_HANDLERS", "JOB_HANDLERS"]


@dataclass
class ServerState:
    """Mutable state of one registered analysis session."""

    session: WhatIfSession | None = None
    use_case_key: str = ""
    options: dict[str, Any] = field(default_factory=dict)
    #: Shared model cache injected by the server; sessions created outside a
    #: server keep the default per-session cache.
    model_cache: ModelCache | None = None
    #: Durable-state hook bound by the session registry: called after a
    #: ``load_use_case`` swaps in a fresh analysis, so the new load
    #: parameters are journaled and the fresh scenario ledger starts
    #: recording.  ``None`` outside a registry (library use, bare tests).
    persist_hook: Callable[["ServerState"], None] | None = None

    def require_session(self) -> WhatIfSession:
        """Return the active session or raise a protocol error."""
        if self.session is None:
            raise ProtocolError(
                "no dataset loaded; send a 'load_use_case' request first"
            )
        return self.session

    def notify_persist(self) -> None:
        """Journal this state through the registry's hook, when bound."""
        if self.persist_hook is not None:
            self.persist_hook(self)


# --------------------------------------------------------------------------- #
# handlers
# --------------------------------------------------------------------------- #
def handle_list_use_cases(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(A) List the registered business use cases."""
    return {
        "use_cases": [
            {
                "key": use_case.key,
                "title": use_case.title,
                "description": use_case.description,
                "kpi": use_case.kpi,
                "kpi_kind": use_case.kpi_kind,
            }
            for use_case in list_use_cases()
        ]
    }


def handle_load_use_case(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(A)+(B) Load a use case's dataset and start a session."""
    key = params.get("use_case")
    if not key:
        raise ProtocolError("'use_case' parameter is required")
    use_case = _get_use_case_or_error(key)
    dataset_kwargs = params.get("dataset_kwargs", {})
    if not isinstance(dataset_kwargs, dict):
        raise ProtocolError("'dataset_kwargs' must be an object")
    state.session = WhatIfSession.from_use_case(
        key,
        dataset_kwargs=dataset_kwargs,
        random_state=params.get("random_state", 0),
        model_cache=state.model_cache,
    )
    state.use_case_key = key
    # remember the load parameters (they are the session's rebuild recipe)
    # and journal them through the registry's persistence hook
    state.options["dataset_kwargs"] = dataset_kwargs
    state.options["random_state"] = params.get("random_state", 0)
    state.notify_persist()
    return {
        "use_case": use_case.key,
        "kpi": use_case.kpi,
        "drivers": state.session.drivers,
        "table": frame_preview(state.session.frame, max_rows=int(params.get("max_rows", 20))),
    }


def _get_use_case_or_error(key: str):
    try:
        return get_use_case(key)
    except KeyError as exc:
        raise ProtocolError(str(exc.args[0])) from exc


def handle_describe_dataset(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(B) Table-view metadata for the loaded dataset."""
    session = state.require_session()
    return to_json_safe(session.describe_dataset())


def handle_set_kpi(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(C) Change the KPI column."""
    session = state.require_session()
    kpi = params.get("kpi")
    if not kpi:
        raise ProtocolError("'kpi' parameter is required")
    try:
        session.set_kpi(kpi)
    except (ValueError, KeyError) as exc:
        raise ProtocolError(str(exc)) from exc
    return {"kpi": session.kpi.to_dict(), "drivers": session.drivers}


def handle_set_drivers(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(D) Replace or prune the driver selection."""
    session = state.require_session()
    if "drivers" in params:
        try:
            session.select_drivers(list(params["drivers"]))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    elif "exclude" in params:
        try:
            session.exclude_drivers(list(params["exclude"]))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    else:
        raise ProtocolError("either 'drivers' or 'exclude' must be provided")
    return {"drivers": session.drivers}


def handle_driver_importance(
    state: ServerState,
    params: dict[str, Any],
    checkpoint: Callable[[float], None] | None = None,
    executor=None,
    emit: Callable[..., None] | None = None,
) -> dict[str, Any]:
    """(E) Driver importance analysis."""
    session = state.require_session()
    result = session.driver_importance(
        verify=bool(params.get("verify", True)),
        checkpoint=checkpoint,
        executor=executor,
    )
    return to_json_safe(result)


def _parse_perturbations(params: dict[str, Any]) -> tuple[PerturbationSet, str]:
    perturbations = params.get("perturbations")
    mode = params.get("mode", "percentage")
    if perturbations is None:
        raise ProtocolError("'perturbations' parameter is required")
    if isinstance(perturbations, dict):
        try:
            return PerturbationSet.from_mapping(
                {str(k): float(v) for k, v in perturbations.items()}, mode=mode
            ), mode
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid perturbations: {exc}") from exc
    if isinstance(perturbations, list):
        try:
            return PerturbationSet.from_list(perturbations), mode
        except (TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(f"invalid perturbations: {exc}") from exc
    raise ProtocolError("'perturbations' must be an object or a list")


def handle_sensitivity(
    state: ServerState,
    params: dict[str, Any],
    checkpoint: Callable[[float], None] | None = None,
    executor=None,
    emit: Callable[..., None] | None = None,
) -> dict[str, Any]:
    """(F)+(G)+(H) Sensitivity analysis on the whole dataset."""
    session = state.require_session()
    perturbations, _ = _parse_perturbations(params)
    try:
        result = session.sensitivity(
            perturbations,
            track_as=params.get("track_as"),
            checkpoint=checkpoint,
            executor=executor,
            emit=emit,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_comparison(
    state: ServerState,
    params: dict[str, Any],
    checkpoint: Callable[[float], None] | None = None,
    executor=None,
    emit: Callable[..., None] | None = None,
) -> dict[str, Any]:
    """(H) Comparison analysis across drivers and perturbation magnitudes."""
    session = state.require_session()
    amounts = params.get("amounts", (-40.0, -20.0, 0.0, 20.0, 40.0))
    try:
        result = session.comparison_analysis(
            params.get("drivers"),
            [float(a) for a in amounts],
            mode=params.get("mode", "percentage"),
            checkpoint=checkpoint,
            executor=executor,
            emit=emit,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_per_data(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(H) Per-data analysis of a single row."""
    session = state.require_session()
    if "row_index" not in params:
        raise ProtocolError("'row_index' parameter is required")
    perturbations, _ = _parse_perturbations(params)
    try:
        result = session.per_data_analysis(int(params["row_index"]), perturbations)
    except (ValueError, IndexError) as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_goal_inversion(
    state: ServerState,
    params: dict[str, Any],
    checkpoint: Callable[[float], None] | None = None,
    executor=None,
    emit: Callable[..., None] | None = None,
) -> dict[str, Any]:
    """(I) Free goal inversion (maximize / minimize / target)."""
    session = state.require_session()
    try:
        result = session.goal_inversion(
            params.get("goal", "maximize"),
            target_value=params.get("target_value"),
            drivers=params.get("drivers"),
            mode=params.get("mode", "percentage"),
            n_calls=int(params.get("n_calls", 30)),
            optimizer=params.get("optimizer", "bayesian"),
            track_as=params.get("track_as"),
            checkpoint=checkpoint,
            executor=executor,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_constrained(
    state: ServerState,
    params: dict[str, Any],
    checkpoint: Callable[[float], None] | None = None,
    executor=None,  # accepted for signature parity; constraint callables stay in-process
    emit: Callable[..., None] | None = None,  # likewise: no chunked stream to publish
) -> dict[str, Any]:
    """(G)+(I) Constrained analysis with per-driver bounds."""
    session = state.require_session()
    raw_bounds = params.get("bounds")
    if not raw_bounds:
        raise ProtocolError("'bounds' parameter is required for constrained analysis")
    try:
        if isinstance(raw_bounds, dict):
            bounds = {
                str(driver): (float(pair[0]), float(pair[1]))
                for driver, pair in raw_bounds.items()
            }
        else:
            bounds = [DriverBound.from_dict(item) for item in raw_bounds]
    except (TypeError, ValueError, KeyError, IndexError) as exc:
        raise ProtocolError(f"invalid bounds: {exc}") from exc
    try:
        result = session.constrained_analysis(
            bounds,
            goal=params.get("goal", "maximize"),
            target_value=params.get("target_value"),
            drivers=params.get("drivers"),
            mode=params.get("mode", "percentage"),
            n_calls=int(params.get("n_calls", 30)),
            optimizer=params.get("optimizer", "bayesian"),
            track_as=params.get("track_as"),
            checkpoint=checkpoint,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def _parse_scenario_space(params: dict[str, Any]):
    """Parse and canonicalise the ``space`` parameter of sweep actions."""
    from ..scenarios import ScenarioSpace

    payload = params.get("space")
    if not isinstance(payload, dict):
        raise ProtocolError(
            "'space' parameter is required and must be an object "
            "(see ScenarioSpace.to_dict)"
        )
    try:
        return ScenarioSpace.from_dict(payload)
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(f"invalid scenario space: {exc}") from exc


def handle_run_sweep(
    state: ServerState,
    params: dict[str, Any],
    checkpoint: Callable[[float], None] | None = None,
    executor=None,
    emit: Callable[..., None] | None = None,
) -> dict[str, Any]:
    """Scenario-space sweep: score a whole space in batched matrix form.

    The result auto-records into the session's scenario ledger.  Submitted
    through the ``sweep`` action this runs as a chunk-checkpointed,
    cancellable engine job; as a synchronous ``run_sweep`` request it blocks
    like any other analysis action.
    """
    session = state.require_session()
    space = _parse_scenario_space(params)
    try:
        result = session.sweep(
            space,
            goal=str(params.get("goal", "maximize")),
            top_k=int(params.get("top_k", 10)),
            cohort=params.get("cohort"),
            track_as=params.get("track_as"),
            checkpoint=checkpoint,
            executor=executor,
            emit=emit,
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def _parse_page(params: dict[str, Any]) -> tuple[int | None, int]:
    """Parse the optional ``limit``/``offset`` pagination parameters."""
    limit = params.get("limit")
    offset = params.get("offset", 0)
    try:
        limit = None if limit is None else max(0, int(limit))
        offset = max(0, int(offset))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"invalid pagination: limit={params.get('limit')!r} "
            f"offset={params.get('offset')!r}"
        ) from exc
    return limit, offset


def _page_envelope(
    key: str,
    items: list[Any],
    *,
    total: int,
    limit: int | None,
    offset: int,
    **extra: Any,
) -> dict[str, Any]:
    """The uniform paging envelope every list endpoint shares: the page under
    ``key`` plus ``total`` (unsliced match count) and the echoed window."""
    return {key: items, "total": total, "limit": limit, "offset": offset, **extra}


def _page_slice(items: list[Any], limit: int | None, offset: int) -> list[Any]:
    """Apply a ``limit``/``offset`` window to an already-ordered list."""
    stop = None if limit is None else offset + limit
    return items[offset:stop]


def handle_list_scenarios(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """List the scenarios (options) tracked so far.

    Pagination: ``limit``/``offset`` slice the stable recording order;
    ``total`` always reports the unsliced count.
    """
    session = state.require_session()
    limit, offset = _parse_page(params)
    page = session.scenarios.list(limit=limit, offset=offset)
    return _page_envelope(
        "scenarios",
        to_json_safe([s.to_dict() for s in page]),
        total=len(session.scenarios),
        limit=limit,
        offset=offset,
    )


# --------------------------------------------------------------------------- #
# server-scoped handlers: session lifecycle and observability
# --------------------------------------------------------------------------- #
def handle_create_session(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Register a new analysis session and return its id.

    Optionally forwards ``use_case`` / ``dataset_kwargs`` / ``random_state``
    to an immediate ``load_use_case`` so one round trip yields a ready
    session.
    """
    requested_id = params.get("session_id")
    try:
        entry = server.registry.create(str(requested_id) if requested_id else None)
    except ValueError as exc:
        if "already exists" in str(exc):
            raise ConflictError(str(exc)) from exc
        raise ProtocolError(str(exc)) from exc
    entry.state.model_cache = server.model_cache
    payload: dict[str, Any] = {
        "session_id": entry.session_id,
        "share_id": entry.share_id,
    }
    if params.get("use_case"):
        try:
            with entry.lock:
                payload.update(handle_load_use_case(entry.state, params))
        except Exception:
            # don't leave an orphan session behind a failed eager load
            server.registry.close(entry.session_id)
            raise
    return payload


def handle_close_session(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Unregister a session (its trained models stay in the shared cache)."""
    from .registry import UnknownSessionError

    session_id = params.get("session_id")
    if not session_id:
        raise ProtocolError("'session_id' parameter is required")
    try:
        entry = server.registry.close(str(session_id))
    except UnknownSessionError as exc:
        raise NotFoundError(f"unknown session {session_id!r}") from exc
    return {"closed": entry.to_dict()}


def handle_list_sessions(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Summaries of every session, live and dormant.

    Pagination: ``limit``/``offset`` slice the stable ``(created_at,
    session_id)`` ordering the registry guarantees; ``total`` always
    reports the unsliced count.
    """
    limit, offset = _parse_page(params)
    sessions = server.registry.list_sessions()
    return _page_envelope(
        "sessions",
        _page_slice(sessions, limit, offset),
        total=len(sessions),
        limit=limit,
        offset=offset,
    )


def handle_server_stats(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Registry, model-cache, engine, and request-level counters."""
    return server.stats()


def handle_metrics(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """JSON twin of the Prometheus exposition (``GET /api/v1/metrics``).

    Every declared metric with its kind, help text, and current samples —
    the same registry the text endpoint renders, for clients that want
    structured data instead of scraping exposition format.
    """
    from ..obs import metrics

    return metrics.registry().to_dict()


# --------------------------------------------------------------------------- #
# server-scoped handlers: ledger versions, share ids, durable-state stats
# (deprecation stage 2: these actions are served through /api/v1 only)
# --------------------------------------------------------------------------- #
def _resolve_session_id(params: dict[str, Any]) -> str:
    # imported here like UnknownSessionError elsewhere: the registry imports
    # ServerState from this module, so a top-level import would be circular
    from .registry import DEFAULT_SESSION_ID

    return str(params.get("session_id") or "") or DEFAULT_SESSION_ID


def _require_known_session(server: "SystemDServer", session_id: str) -> None:
    """404 unless the session is live, dormant-but-durable, or the default."""
    from .registry import DEFAULT_SESSION_ID

    if session_id == DEFAULT_SESSION_ID or session_id in server.registry:
        return
    if server.registry.backend.load_session(session_id) is None:
        raise NotFoundError(
            f"unknown session {session_id!r}; create one with 'create_session' "
            "or omit session_id for the default session"
        )


def handle_create_version(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Snapshot the session's scenario ledger as an immutable version.

    The version — name, creation instant, and the full event list — is
    persisted through the durable-state backend, so it survives restarts
    and ledger clears.  Duplicate names conflict (HTTP 409).
    """
    session_id = _resolve_session_id(params)
    entry = server._entry_for(session_id)
    name = str(params.get("name") or "")
    backend = server.registry.backend
    with entry.lock:
        session = entry.state.require_session()
        events = [scenario.to_dict() for scenario in session.scenarios]
        existing = backend.load_versions(session_id)
        if name and any(v.get("name") == name for v in existing):
            raise ConflictError(
                f"version named {name!r} already exists for session {session_id!r}"
            )
        version_id = max((int(v["version_id"]) for v in existing), default=0) + 1
        record = {
            "version_id": version_id,
            "name": name or f"v{version_id}",
            "created_at": time.time(),
            "scenario_count": len(events),
            "events": events,
        }
        backend.save_version(session_id, record)
    summary = {k: v for k, v in record.items() if k != "events"}
    return {"version": summary, "session_id": session_id}


def handle_list_versions(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """List a session's ledger versions (summaries, oldest first).

    Versions are read straight from the durable backend — the session is not
    recovered or touched, so listing a dormant session's versions is cheap.
    Pagination follows the uniform ``limit``/``offset``/``total`` contract.
    """
    session_id = _resolve_session_id(params)
    _require_known_session(server, session_id)
    limit, offset = _parse_page(params)
    records = server.registry.backend.load_versions(session_id)
    summaries = [{k: v for k, v in r.items() if k != "events"} for r in records]
    return _page_envelope(
        "versions",
        _page_slice(summaries, limit, offset),
        total=len(summaries),
        limit=limit,
        offset=offset,
        session_id=session_id,
    )


def handle_resolve_share(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Resolve a read-only share id (minted at session create) to its session.

    Returns the session summary without recovering or touching the session;
    unknown share ids are 404s.
    """
    share_id = params.get("share_id")
    if not share_id:
        raise ProtocolError("'share_id' parameter is required")
    summary = server.registry.find_share(str(share_id))
    if summary is None:
        raise NotFoundError(f"unknown share id {share_id!r}")
    return {"session": summary, "read_only": True}


def handle_persist_stats(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Durable-state backend identity, row counts, and recovery counters."""
    registry_stats = server.registry.stats()
    return {
        "persistence": registry_stats["backend"],
        "recovered_sessions": registry_stats["recovered_total"],
        "jobs": {
            key: server.engine.store.stats()[key]
            for key in ("restored_total", "interrupted_total")
        },
    }


# --------------------------------------------------------------------------- #
# server-scoped handlers: the async analysis engine
# --------------------------------------------------------------------------- #
def _require_job_id(params: dict[str, Any]) -> str:
    job_id = params.get("job_id")
    if not job_id:
        raise ProtocolError("'job_id' parameter is required")
    return str(job_id)


def _job_lookup(job_id: str, lookup: Callable[[], Any]) -> Any:
    """Run a store lookup, translating unknown/evicted ids to protocol errors."""
    from ..engine import UnknownJobError

    try:
        return lookup()
    except UnknownJobError as exc:
        raise NotFoundError(
            f"unknown job {job_id!r} (finished jobs are retained LRU; it may have "
            "been evicted)"
        ) from exc


def handle_submit(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Queue any job-able analysis action for asynchronous execution.

    Identical in-flight submissions (same session, model fingerprint, action,
    and params) coalesce onto one job; ``coalesced`` reports whether that
    happened.  Poll with ``job_status`` / fetch with ``job_result``.
    """
    action = params.get("action")
    if not action:
        raise ProtocolError("'action' parameter is required for submit")
    job_params = params.get("params", {})
    if not isinstance(job_params, dict):
        raise ProtocolError("'params' must be an object")
    try:
        priority = int(params.get("priority", 0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid priority: {params.get('priority')!r}") from exc
    job, coalesced = server.engine.submit(
        str(action),
        job_params,
        session_id=str(params.get("session_id") or ""),
        priority=priority,
    )
    return {"job": job.to_dict(now=server.engine.now()), "coalesced": coalesced}


def handle_job_status(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Lifecycle state, progress fraction, timings, and span timeline of one
    job (``trace`` is the recorded spans of the job's trace so far — empty
    until the job starts, complete once it is terminal)."""
    job_id = _require_job_id(params)
    job = _job_lookup(job_id, lambda: server.engine.status(job_id))
    return {
        "job": job.to_dict(now=server.engine.now()),
        "trace": server.engine.trace_timeline(job_id),
    }


def handle_job_result(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Fetch a finished job's payload, optionally waiting for completion.

    ``wait`` (default True) blocks up to ``timeout_s`` (default 30) for the
    job to reach a terminal state.  Failed/cancelled jobs and jobs still
    running after the wait produce error responses so clients never mistake
    a partial analysis for a result.
    """
    job_id = _require_job_id(params)
    wait = bool(params.get("wait", True))
    try:
        timeout = float(params.get("timeout_s", 30.0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid timeout_s: {params.get('timeout_s')!r}") from exc
    job = _job_lookup(
        job_id, lambda: server.engine.result(job_id, wait=wait, timeout=timeout)
    )
    snapshot = job.to_dict(now=server.engine.now(), include_result=True)
    state = snapshot["state"]
    if state == "done":
        return {"job": snapshot, "result": snapshot.pop("result")}
    if state in ("failed", "cancelled"):
        raise ProtocolError(f"job {job_id} {state}: {snapshot['error'] or state}")
    raise ProtocolError(
        f"job {job_id} is still {state} (progress {snapshot['progress']:.0%}); "
        "poll 'job_status' or pass a longer 'timeout_s'"
    )


def handle_cancel_job(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Request cooperative cancellation of a pending or running job."""
    job_id = _require_job_id(params)
    job = _job_lookup(job_id, lambda: server.engine.cancel(job_id))
    return {"job": job.to_dict(now=server.engine.now())}


def handle_list_jobs(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Snapshots of tracked jobs, optionally filtered by session or state.

    Pagination: ``limit``/``offset`` slice the stable ``(submitted_at,
    job_id)`` ordering; ``total`` always reports the unsliced match count.
    """
    states = params.get("states")
    if states is not None and not isinstance(states, (list, tuple)):
        raise ProtocolError("'states' must be a list of job states")
    session_id = params.get("session_id")
    limit, offset = _parse_page(params)
    state_filter = [str(s) for s in states] if states is not None else None
    sid_filter = str(session_id) if session_id else None
    return _page_envelope(
        "jobs",
        server.engine.list_jobs(
            session_id=sid_filter,
            states=state_filter,
            limit=limit,
            offset=offset,
        ),
        total=server.engine.count_jobs(session_id=sid_filter, states=state_filter),
        limit=limit,
        offset=offset,
        engine=server.engine.stats(),
    )


def handle_sweep(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Queue a scenario-space sweep as a background engine job.

    The space is parsed and re-serialised to its canonical wire form before
    submission, so two clients describing the same space — axes in any
    order — submit byte-identical job params and coalesce onto one job (the
    engine's coalesce key covers the session, the model fingerprint, and the
    canonical params, which embed the space hash).  Returns the job snapshot,
    the ``space_hash``, and whether the submission coalesced; fetch the
    ranked result with ``sweep_result``.
    """
    space = _parse_scenario_space(params)
    job_params: dict[str, Any] = {
        "space": space.to_dict(),
        "space_hash": space.space_hash(),
        "goal": str(params.get("goal", "maximize")),
        "top_k": int(params.get("top_k", 10)),
    }
    if params.get("cohort") is not None:
        job_params["cohort"] = str(params["cohort"])
    if params.get("track_as") is not None:
        job_params["track_as"] = str(params["track_as"])
    try:
        priority = int(params.get("priority", 0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid priority: {params.get('priority')!r}") from exc
    job, coalesced = server.engine.submit(
        "run_sweep",
        job_params,
        session_id=str(params.get("session_id") or ""),
        priority=priority,
    )
    return {
        "job": job.to_dict(now=server.engine.now()),
        "coalesced": coalesced,
        "space_hash": job_params["space_hash"],
        "space_size": space.size,
    }


def handle_sweep_result(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Fetch a sweep job's ranked result.

    Address the job either by ``job_id`` or by the ``space_hash`` that
    ``sweep`` returned (the most recently submitted sweep job of the
    request's session for that hash).  Waiting semantics match
    ``job_result``.
    """
    job_id = params.get("job_id")
    if not job_id:
        space_hash = params.get("space_hash")
        if not space_hash:
            raise ProtocolError(
                "either 'job_id' or 'space_hash' is required for sweep_result"
            )
        # imported here like UnknownSessionError above: the registry imports
        # ServerState from this module, so a top-level import would be circular
        from .registry import DEFAULT_SESSION_ID

        # resolve the session exactly like submission does: an omitted id
        # means the default session, never "any session with this hash"
        session_id = str(params.get("session_id") or "") or DEFAULT_SESSION_ID
        candidates = [
            job
            for job in server.engine.store.list_jobs(session_id=session_id)
            if job.action == "run_sweep"
            and job.params.get("space_hash") == space_hash
        ]
        if not candidates:
            raise NotFoundError(
                f"no sweep job found for space hash {space_hash!r} (finished jobs "
                "are retained LRU; it may have been evicted)"
            )
        job_id = candidates[-1].job_id
    return handle_job_result(server, {**params, "job_id": job_id})


#: Dispatch table used by the server app.
HANDLERS: dict[str, Callable[[ServerState, dict[str, Any]], dict[str, Any]]] = {
    "list_use_cases": handle_list_use_cases,
    "load_use_case": handle_load_use_case,
    "describe_dataset": handle_describe_dataset,
    "set_kpi": handle_set_kpi,
    "set_drivers": handle_set_drivers,
    "driver_importance": handle_driver_importance,
    "sensitivity": handle_sensitivity,
    "comparison": handle_comparison,
    "per_data": handle_per_data,
    "goal_inversion": handle_goal_inversion,
    "constrained": handle_constrained,
    "run_sweep": handle_run_sweep,
    "list_scenarios": handle_list_scenarios,
}

#: Server-scoped dispatch table (session lifecycle, observability, and the
#: async engine); these handlers run outside any per-session lock — ``submit``
#: returns immediately and the job acquires the session lock on a worker.
SERVER_HANDLERS: dict[str, Callable[["SystemDServer", dict[str, Any]], dict[str, Any]]] = {
    "create_session": handle_create_session,
    "close_session": handle_close_session,
    "list_sessions": handle_list_sessions,
    "server_stats": handle_server_stats,
    "metrics": handle_metrics,
    "submit": handle_submit,
    "job_status": handle_job_status,
    "job_result": handle_job_result,
    "cancel_job": handle_cancel_job,
    "list_jobs": handle_list_jobs,
    "sweep": handle_sweep,
    "sweep_result": handle_sweep_result,
    "create_version": handle_create_version,
    "list_versions": handle_list_versions,
    "resolve_share": handle_resolve_share,
    "persist_stats": handle_persist_stats,
}


# --------------------------------------------------------------------------- #
# job-able wrappers: the same analysis handlers, driven by an engine worker
# --------------------------------------------------------------------------- #
def _checkpointed(
    handler: Callable[
        [ServerState, dict[str, Any], Callable[[float], None] | None],
        dict[str, Any],
    ],
) -> Callable[[ServerState, dict[str, Any], "JobContext"], dict[str, Any]]:
    """Adapt a checkpoint-aware handler to the job-runner calling convention."""

    def run(
        state: ServerState, params: dict[str, Any], context: "JobContext"
    ) -> dict[str, Any]:
        return handler(
            state,
            params,
            checkpoint=context.checkpoint,
            executor=getattr(context, "executor", None),
            emit=getattr(context, "emit", None),
        )

    return run


def _plain(
    handler: Callable[[ServerState, dict[str, Any]], dict[str, Any]],
) -> Callable[[ServerState, dict[str, Any], "JobContext"], dict[str, Any]]:
    """Adapt a handler with no chunked runner (fast actions): it runs once,
    checkpointing only at the start so a pre-run cancellation still lands."""

    def run(state: ServerState, params: dict[str, Any], context: "JobContext") -> dict[str, Any]:
        context.checkpoint(0.0)
        return handler(state, params)

    return run


#: Actions that may run asynchronously as engine jobs, mapped to wrappers
#: with the ``(state, params, job_context)`` signature.  The heavy analyses
#: thread the job's checkpoint through their chunked runners; the payload of
#: a job is bitwise identical to the synchronous action's response data.
JOB_HANDLERS: dict[str, Callable[[ServerState, dict[str, Any], "JobContext"], dict[str, Any]]] = {
    "driver_importance": _checkpointed(handle_driver_importance),
    "sensitivity": _checkpointed(handle_sensitivity),
    "comparison": _checkpointed(handle_comparison),
    "per_data": _plain(handle_per_data),
    "goal_inversion": _checkpointed(handle_goal_inversion),
    "constrained": _checkpointed(handle_constrained),
    "run_sweep": _checkpointed(handle_run_sweep),
}
