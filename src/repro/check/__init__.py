"""Project-specific static analysis (``repro check``).

An AST-based rule engine enforcing the invariants no generic linter can
see: lock discipline in the engine/server (LCK001–LCK003), bitwise
determinism of result-producing code (DET001–DET004), pickle-safety of
everything shipped across the process boundary (PKL001), agreement
between the five hand-maintained protocol/dispatch/route/CLI registries
plus the documented route tables (REG001–REG007), persistence discipline
for backend-journaled state (PER001), and observability drift between the
declarative ``METRICS`` table and its instrumentation sites
(OBS001–OBS003).
Findings are suppressable inline with a justified
``# repro: ignore[RULE] -- why`` comment; see :mod:`repro.check.engine`.

Run it locally with ``repro check`` (or ``python -m repro check``); the
tier-1 suite and a blocking CI job both assert the tree stays clean.
"""

from __future__ import annotations

from pathlib import Path

from .engine import Finding, Project, Rule, load_project, run_rules
from .report import format_json, format_text, summarize
from .rules_determinism import RULES as DETERMINISM_RULES
from .rules_lock import RULES as LOCK_RULES
from .rules_obs import RULES as OBS_RULES
from .rules_persist import RULES as PERSIST_RULES
from .rules_pickle import RULES as PICKLE_RULES
from .rules_registry import RULES as REGISTRY_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "Project",
    "Rule",
    "default_root",
    "format_json",
    "format_text",
    "load_project",
    "run",
    "run_rules",
    "summarize",
]

#: The full rule catalogue, in reporting order.
ALL_RULES: list[Rule] = [
    *LOCK_RULES,
    *DETERMINISM_RULES,
    *PICKLE_RULES,
    *REGISTRY_RULES,
    *PERSIST_RULES,
    *OBS_RULES,
]


def default_root() -> Path:
    """The installed ``repro`` package directory (what ``repro check`` scans)."""
    return Path(__file__).resolve().parent.parent


def run(root: Path | None = None, rule_ids: list[str] | None = None) -> list[Finding]:
    """Load ``root`` (default: the repro package) and run the rule catalogue."""
    project = load_project(root or default_root())
    return run_rules(project, ALL_RULES, only=rule_ids)
