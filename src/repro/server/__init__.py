"""Client/server substrate: the JSON protocol and dispatcher standing in for
SystemD's browser-client / Python-backend architecture."""

from .app import SystemDServer, serve_http
from .handlers import HANDLERS, ServerState
from .protocol import ACTIONS, ProtocolError, Request, Response
from .serialization import dumps, frame_preview, to_json_safe

__all__ = [
    "SystemDServer",
    "serve_http",
    "ServerState",
    "HANDLERS",
    "Request",
    "Response",
    "ACTIONS",
    "ProtocolError",
    "to_json_safe",
    "frame_preview",
    "dumps",
]
