"""Study-protocol simulation: regenerate the Figure 3 data and Section 4 tallies.

:func:`run_study` walks the paper's protocol with the simulated personas: each
participant "uses" the system on their use case (the harness actually runs the
four functionalities end-to-end, so the study exercises the real code path),
then answers the usability questionnaire according to their persona tendency
plus bounded noise, and ranks the functionalities.  The output bundles:

* per-question Likert summaries (Figure 3);
* the most-useful-functionality tally (Section 4: 3/5 driver importance,
  2/5 sensitivity or constrained analysis);
* per-participant analysis traces proving each persona's session ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core import WhatIfSession
from .likert import LikertResponse, LikertSummary, aggregate_responses
from .personas import DEFAULT_PERSONAS, Persona
from .questionnaire import USABILITY_QUESTIONS

__all__ = ["StudyResult", "run_study", "simulate_responses"]


@dataclass
class StudyResult:
    """Everything the simulated study produced.

    Attributes
    ----------
    responses:
        Raw Likert responses (5 participants × 8 usability questions).
    summaries:
        Per-question aggregates ordered by mean rating (Figure 3 bars).
    most_useful_tally:
        Count of participants ranking each functionality first.
    participant_traces:
        Per-participant record of the analyses run during their walkthrough.
    """

    responses: list[LikertResponse] = field(default_factory=list)
    summaries: list[LikertSummary] = field(default_factory=list)
    most_useful_tally: dict[str, int] = field(default_factory=dict)
    participant_traces: dict[str, dict[str, Any]] = field(default_factory=dict)

    def summary_by_label(self) -> dict[str, float]:
        """``short label -> mean rating`` (the Figure 3 series)."""
        return {s.short_label: s.mean_rating for s in self.summaries}

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "figure3": [s.to_dict() for s in self.summaries],
            "most_useful_tally": dict(self.most_useful_tally),
            "participants": {
                name: {k: v for k, v in trace.items() if k != "session"}
                for name, trace in self.participant_traces.items()
            },
        }


def simulate_responses(
    personas: tuple[Persona, ...] = DEFAULT_PERSONAS,
    *,
    noise: float = 0.3,
    random_state: int | None = 0,
) -> list[LikertResponse]:
    """Draw Likert ratings from each persona's tendency plus bounded noise."""
    rng = np.random.default_rng(random_state)
    responses = []
    for persona in personas:
        for question in USABILITY_QUESTIONS:
            tendency = persona.rating_tendency.get(question.qid, 4.0)
            rating = tendency + rng.normal(0.0, noise)
            rating = int(np.clip(round(rating), 1, 5))
            responses.append(
                LikertResponse(participant=persona.name, qid=question.qid, rating=rating)
            )
    return responses


def _walkthrough(persona: Persona, *, dataset_rows: int, random_state: int) -> dict[str, Any]:
    """Run the demo protocol for one participant on their use case."""
    dataset_kwargs: dict[str, Any] = {}
    if persona.use_case == "marketing_mix":
        dataset_kwargs = {"n_days": max(60, dataset_rows // 4)}
    elif persona.use_case == "customer_retention":
        dataset_kwargs = {"n_customers": dataset_rows}
    else:
        dataset_kwargs = {"n_prospects": dataset_rows}
    session = WhatIfSession.from_use_case(
        persona.use_case, dataset_kwargs=dataset_kwargs, random_state=random_state
    )
    importance = session.driver_importance(verify=False)
    top_driver = importance.top(1)[0]
    sensitivity = session.sensitivity({top_driver: 20.0}, track_as="demo +20%")
    inversion = session.goal_inversion(
        "maximize", drivers=[top_driver], n_calls=8, track_as="demo max"
    )
    return {
        "session": session,
        "use_case": persona.use_case,
        "top_driver": top_driver,
        "importance_top3": importance.top(3),
        "sensitivity_uplift": sensitivity.uplift,
        "best_kpi": inversion.best_kpi,
        "model_confidence": importance.model_confidence,
    }


def run_study(
    personas: tuple[Persona, ...] = DEFAULT_PERSONAS,
    *,
    run_walkthroughs: bool = True,
    dataset_rows: int = 400,
    noise: float = 0.3,
    random_state: int | None = 0,
) -> StudyResult:
    """Simulate the full evaluation protocol.

    Parameters
    ----------
    personas:
        The simulated participants (defaults to the paper's five roles).
    run_walkthroughs:
        Whether each participant's demo session actually executes the four
        functionalities (disable to regenerate Figure 3 quickly).
    dataset_rows:
        Size of the per-participant demo datasets.
    noise:
        Rating noise around each persona's tendency.
    random_state:
        Seed for reproducibility.
    """
    result = StudyResult()
    result.responses = simulate_responses(personas, noise=noise, random_state=random_state)
    labels = {q.qid: q.short_label for q in USABILITY_QUESTIONS}
    result.summaries = aggregate_responses(result.responses, labels)

    tally: dict[str, int] = {}
    for persona in personas:
        first_choice = persona.functionality_ranking[0]
        tally[first_choice] = tally.get(first_choice, 0) + 1
    result.most_useful_tally = tally

    if run_walkthroughs:
        for index, persona in enumerate(personas):
            result.participant_traces[persona.name] = _walkthrough(
                persona,
                dataset_rows=dataset_rows,
                random_state=(random_state or 0) + index,
            )
    return result
