"""Unit tests for group-by and join."""

from __future__ import annotations

import pytest

from repro.frame import Column, DataFrame, JoinError, TypeMismatchError, join_frames


class TestGroupBy:
    def test_group_count(self, tiny_frame):
        grouped = tiny_frame.groupby("region")
        assert grouped.n_groups == 2

    def test_iteration_yields_subframes(self, tiny_frame):
        for key, subframe in tiny_frame.groupby("region"):
            assert subframe.n_rows == 3
            assert set(subframe.column("region").tolist()) == {key[0]}

    def test_get_group(self, tiny_frame):
        east = tiny_frame.groupby("region").get_group("east")
        assert east.column("spend").tolist() == [10.0, 30.0, 50.0]

    def test_get_group_missing(self, tiny_frame):
        with pytest.raises(KeyError):
            tiny_frame.groupby("region").get_group("north")

    def test_size(self, tiny_frame):
        sizes = tiny_frame.groupby("region").size()
        assert sorted(sizes.column("size").tolist()) == [3, 3]

    def test_agg_mean_and_sum(self, tiny_frame):
        result = tiny_frame.groupby("region").agg({"spend": "mean", "clicks": "sum"})
        east = result.filter(lambda row: row["region"] == "east")
        assert east.column("spend_mean")[0] == 30.0
        assert east.column("clicks_sum")[0] == 9.0

    def test_agg_count_nunique(self, tiny_frame):
        result = tiny_frame.groupby("region").agg({"clicks": "count", "converted": "nunique"})
        assert result.column("clicks_count").tolist() == [3.0, 3.0]

    def test_agg_unknown_reducer(self, tiny_frame):
        with pytest.raises(TypeMismatchError):
            tiny_frame.groupby("region").agg({"spend": "mode"})

    def test_agg_missing_column(self, tiny_frame):
        with pytest.raises(Exception):
            tiny_frame.groupby("region").agg({"nope": "mean"})

    def test_multi_key_grouping(self, tiny_frame):
        grouped = tiny_frame.groupby(["region", "converted"])
        # east/False, west/False, east/True, west/True
        assert grouped.n_groups == 4
        assert sum(len(ix) for ix in grouped.groups().values()) == 6

    def test_apply(self, tiny_frame):
        means = tiny_frame.groupby("region").apply(lambda sub: sub.column("spend").mean())
        assert means[("east",)] == 30.0
        assert means[("west",)] == 40.0

    def test_mean_convenience(self, tiny_frame):
        result = tiny_frame.groupby("region").mean(["spend"])
        assert set(result.columns) == {"region", "spend_mean"}


class TestJoin:
    @pytest.fixture()
    def accounts(self):
        return DataFrame(
            {
                "account": Column("account", ["a", "b", "c"], dtype="string"),
                "spend": [1.0, 2.0, 3.0],
            }
        )

    @pytest.fixture()
    def owners(self):
        return DataFrame(
            {
                "account": Column("account", ["a", "b", "d"], dtype="string"),
                "owner": Column("owner", ["amy", "bob", "dan"], dtype="string"),
            }
        )

    def test_inner_join(self, accounts, owners):
        joined = join_frames(accounts, owners, ["account"], how="inner")
        assert joined.n_rows == 2
        assert set(joined.column("owner").tolist()) == {"amy", "bob"}

    def test_left_join_fills_missing(self, accounts, owners):
        joined = accounts.join(owners, on="account", how="left")
        assert joined.n_rows == 3
        c_row = joined.filter(lambda row: row["account"] == "c")
        assert c_row.column("owner")[0] is None

    def test_join_duplicate_value_columns_get_suffix(self, accounts):
        other = DataFrame(
            {
                "account": Column("account", ["a"], dtype="string"),
                "spend": [99.0],
            }
        )
        joined = accounts.join(other, on="account", how="inner")
        assert "spend_right" in joined.columns

    def test_one_to_many_join(self, accounts):
        activity = DataFrame(
            {
                "account": Column("account", ["a", "a", "b"], dtype="string"),
                "clicks": [1, 2, 3],
            }
        )
        joined = accounts.join(activity, on="account", how="inner")
        assert joined.n_rows == 3

    def test_missing_key_raises(self, accounts, owners):
        with pytest.raises(JoinError):
            join_frames(accounts, owners, ["nope"])

    def test_unknown_join_type(self, accounts, owners):
        with pytest.raises(JoinError):
            join_frames(accounts, owners, ["account"], how="outer")

    def test_empty_result(self, accounts):
        other = DataFrame(
            {
                "account": Column("account", ["zzz"], dtype="string"),
                "owner": Column("owner", ["nobody"], dtype="string"),
            }
        )
        joined = accounts.join(other, on="account", how="inner")
        assert joined.n_rows == 0
