"""Execute a parsed experiment specification.

The executor replays a spec against the same public API an interactive user
drives: build the dataset (loading the use case, applying filters, adding
formula drivers), construct a :class:`~repro.core.session.WhatIfSession`, run
each analysis step in order, and collect the results keyed by step name.  A
spec executed here therefore produces byte-for-byte the same result objects a
hand-driven session would — the property the spec round-trip integration test
checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core import DriverBound, WhatIfSession
from ..datasets import get_use_case
from ..frame import DataFrame
from .grammar import AnalysisSpec, DatasetSpec, ExperimentSpec, FilterSpec
from .parser import SpecError

__all__ = ["ExperimentRun", "execute_spec", "build_dataset", "build_session"]


@dataclass
class ExperimentRun:
    """Results of executing one experiment spec.

    Attributes
    ----------
    spec:
        The executed specification.
    session:
        The session the analyses ran against (kept for follow-up queries).
    results:
        Mapping of analysis step name to its result object.
    """

    spec: ExperimentSpec
    session: WhatIfSession
    results: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary of the run."""
        return {
            "name": self.spec.name,
            "description": self.spec.description,
            "kpi": self.session.kpi.to_dict(),
            "drivers": self.session.drivers,
            "results": {
                name: result.to_dict() for name, result in self.results.items()
            },
        }


# --------------------------------------------------------------------------- #
def _filter_mask(frame: DataFrame, spec: FilterSpec) -> np.ndarray:
    column = frame.column(spec.column)
    if spec.op == "in":
        mask = column.isin(spec.value)
    elif spec.op == "==":
        mask = column.eq(spec.value)
    elif spec.op == "!=":
        mask = column.ne(spec.value)
    elif spec.op == ">":
        mask = column.gt(spec.value)
    elif spec.op == ">=":
        mask = column.ge(spec.value)
    elif spec.op == "<":
        mask = column.lt(spec.value)
    else:
        mask = column.le(spec.value)
    return np.asarray(mask, dtype=bool)


def build_dataset(dataset: DatasetSpec) -> DataFrame:
    """Materialise the dataset a spec refers to (use case or inline records).

    Inline records go through the columnar ``DataFrame.from_records``
    constructor, and all filters are combined into one boolean mask so the
    frame is copied once rather than once per filter clause.
    """
    if dataset.use_case:
        try:
            frame = get_use_case(dataset.use_case).load(**dataset.dataset_kwargs)
        except KeyError as exc:
            raise SpecError(str(exc.args[0])) from exc
    else:
        frame = DataFrame.from_records(list(dataset.records))
    if dataset.filters:
        mask = np.ones(frame.n_rows, dtype=bool)
        for filter_spec in dataset.filters:
            mask &= _filter_mask(frame, filter_spec)
        frame = frame.mask(mask)
    if frame.n_rows == 0:
        raise SpecError("dataset filters removed every row")
    return frame


def build_session(spec: ExperimentSpec) -> WhatIfSession:
    """Construct the session a spec describes (dataset + KPI + drivers)."""
    frame = build_dataset(spec.dataset)
    session = WhatIfSession(
        frame,
        spec.kpi.column,
        random_state=spec.random_state,
    )
    for formula in spec.drivers.formulas:
        session.add_formula_driver(formula.name, formula.expression)
    if spec.drivers.include:
        session.select_drivers(list(spec.drivers.include))
    if spec.drivers.exclude:
        session.exclude_drivers(list(spec.drivers.exclude))
    return session


def _run_step(session: WhatIfSession, step: AnalysisSpec) -> Any:
    params = dict(step.params)
    if step.kind == "driver_importance":
        return session.driver_importance(verify=bool(params.get("verify", True)))
    if step.kind == "sensitivity":
        return session.sensitivity(
            params["perturbations"],
            mode=params.get("mode", "percentage"),
            track_as=params.get("track_as", step.name),
        )
    if step.kind == "comparison":
        return session.comparison_analysis(
            params.get("drivers"),
            params.get("amounts", (-40.0, -20.0, 0.0, 20.0, 40.0)),
            mode=params.get("mode", "percentage"),
        )
    if step.kind == "per_data":
        return session.per_data_analysis(
            int(params["row_index"]),
            params["perturbations"],
            mode=params.get("mode", "percentage"),
        )
    if step.kind == "goal_inversion":
        return session.goal_inversion(
            params.get("goal", "maximize"),
            target_value=params.get("target_value"),
            drivers=params.get("drivers"),
            mode=params.get("mode", "percentage"),
            n_calls=int(params.get("n_calls", 30)),
            optimizer=params.get("optimizer", "bayesian"),
            track_as=params.get("track_as", step.name),
        )
    if step.kind == "constrained":
        raw_bounds = params.get("bounds", {})
        if isinstance(raw_bounds, dict):
            bounds: Any = {
                driver: (float(pair[0]), float(pair[1]))
                for driver, pair in raw_bounds.items()
            }
        else:
            bounds = [DriverBound.from_dict(item) for item in raw_bounds]
        return session.constrained_analysis(
            bounds,
            goal=params.get("goal", "maximize"),
            target_value=params.get("target_value"),
            drivers=params.get("drivers"),
            mode=params.get("mode", "percentage"),
            n_calls=int(params.get("n_calls", 30)),
            optimizer=params.get("optimizer", "bayesian"),
            track_as=params.get("track_as", step.name),
        )
    raise SpecError(f"unhandled analysis kind {step.kind!r}")  # pragma: no cover


def execute_spec(spec: ExperimentSpec) -> ExperimentRun:
    """Execute every analysis step of a spec and collect the results.

    Raises
    ------
    SpecError
        When a step's parameters are missing or invalid (wrapping the
        underlying session error with the step name for easier debugging).
    """
    session = build_session(spec)
    run = ExperimentRun(spec=spec, session=session)
    for step in spec.analyses:
        try:
            run.results[step.name] = _run_step(session, step)
        except (KeyError, ValueError, IndexError) as exc:
            raise SpecError(f"analysis step {step.name!r} failed: {exc}") from exc
    return run
