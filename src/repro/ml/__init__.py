"""Machine-learning substrate (the scikit-learn substitute under SystemD).

Provides the two model families the paper trains — linear regression for
continuous KPIs and random-forest classifiers for discrete KPIs — plus the
supporting cast (logistic regression, decision trees, metrics, splitting,
preprocessing, pipelines) used by the robustness analysis and the model
manager's confidence estimates.
"""

from .base import (
    BaseEstimator,
    ClassifierMixin,
    NotFittedError,
    RegressorMixin,
    TransformerMixin,
    check_array,
    check_is_fitted,
    check_X_y,
    clone,
)
from .forest import RandomForestClassifier, RandomForestRegressor
from .kernel import ForestKernel, TreeKernel
from .linear import LinearRegression, Ridge
from .logistic import LogisticRegression
from .metrics import (
    accuracy_score,
    brier_score,
    confusion_matrix,
    explained_variance_score,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_score,
    r2_score,
    recall_score,
    roc_auc_score,
    root_mean_squared_error,
)
from .model_selection import KFold, cross_val_predict, cross_val_score, train_test_split
from .pipeline import Pipeline
from .preprocessing import LabelEncoder, MinMaxScaler, OneHotEncoder, StandardScaler
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "RegressorMixin",
    "TransformerMixin",
    "NotFittedError",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "clone",
    "LinearRegression",
    "Ridge",
    "LogisticRegression",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "TreeKernel",
    "ForestKernel",
    "Pipeline",
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "OneHotEncoder",
    "KFold",
    "train_test_split",
    "cross_val_score",
    "cross_val_predict",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "log_loss",
    "roc_auc_score",
    "brier_score",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "explained_variance_score",
]
