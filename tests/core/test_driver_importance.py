"""Unit tests for driver importance analysis (functionality 1)."""

from __future__ import annotations

import pytest

from repro.core import compute_driver_importance


@pytest.fixture(scope="module")
def importance_result(deal_session):
    return compute_driver_importance(deal_session.model, verify=True, random_state=0)


class TestImportanceValues:
    def test_importances_in_display_range(self, importance_result):
        for entry in importance_result.drivers:
            assert -1.0 <= entry.importance <= 1.0

    def test_most_important_driver_has_magnitude_one(self, importance_result):
        assert abs(importance_result.drivers[0].importance) == pytest.approx(1.0)

    def test_ordered_by_absolute_importance(self, importance_result):
        magnitudes = [abs(entry.importance) for entry in importance_result.drivers]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_ranks_are_sequential(self, importance_result):
        assert [entry.rank for entry in importance_result.drivers] == list(
            range(1, len(importance_result.drivers) + 1)
        )

    def test_covers_every_driver(self, importance_result, deal_session):
        assert {entry.driver for entry in importance_result.drivers} == set(deal_session.drivers)

    def test_recovers_planted_strong_drivers(self, importance_result):
        # the synthetic generator plants Open Marketing Email / Renewal / Call
        # as the strongest drivers; at least two must appear in the top 4
        strong = {"Open Marketing Email", "Renewal", "Call"}
        assert len(strong & set(importance_result.top(4))) >= 2

    def test_weak_drivers_rank_low(self, importance_result):
        weak = {"LinkedIn Contact", "Initiate New Contact", "Meeting"}
        bottom_half = set(importance_result.bottom(6))
        assert len(weak & bottom_half) >= 2

    def test_importance_of_lookup(self, importance_result):
        name = importance_result.drivers[0].driver
        assert importance_result.importance_of(name) == importance_result.drivers[0].importance
        with pytest.raises(KeyError):
            importance_result.importance_of("not a driver")

    def test_model_confidence_reported(self, importance_result):
        assert 0.0 <= importance_result.model_confidence <= 1.0


class TestVerification:
    def test_verification_measures_present(self, importance_result):
        for entry in importance_result.drivers:
            assert set(entry.verification) == {"pearson", "spearman", "shapley", "permutation"}

    def test_correlations_in_range(self, importance_result):
        for entry in importance_result.drivers:
            assert -1.0 <= entry.verification["pearson"] <= 1.0
            assert -1.0 <= entry.verification["spearman"] <= 1.0

    def test_agreement_summary_present(self, importance_result):
        assert set(importance_result.agreement) == {"pearson", "spearman", "shapley", "permutation"}
        for scores in importance_result.agreement.values():
            assert "spearman_rank_agreement" in scores

    def test_model_importances_agree_with_correlation_ranking(self, importance_result):
        # the paper's stated purpose of verification: the model coefficients
        # should not be wildly at odds with the traditional measures
        assert importance_result.agreement["pearson"]["spearman_rank_agreement"] > 0.4

    def test_verify_false_skips_verification(self, deal_session):
        result = compute_driver_importance(deal_session.model, verify=False)
        assert result.agreement == {}
        assert all(entry.verification == {} for entry in result.drivers)

    def test_to_dict_round_trip_fields(self, importance_result):
        payload = importance_result.to_dict()
        assert payload["kpi"] == "Deal Closed?"
        assert len(payload["drivers"]) == len(importance_result.drivers)


class TestContinuousKPIImportance:
    def test_linear_importances_signed(self, marketing_session):
        result = marketing_session.driver_importance(verify=False)
        # planted effectiveness: Internet strongest, Radio weakest
        assert result.top(1) == ["Internet"]
        assert "Radio" in result.bottom(2)
        importances = {e.driver: e.importance for e in result.drivers}
        assert importances["Internet"] > 0
