"""Unit tests for the bench-regression gate comparator."""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.check_regression import TOLERANCE, compare_file, run


def write(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))


def make_dirs(tmp_path: Path) -> tuple[Path, Path]:
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    baseline_dir.mkdir()
    current_dir.mkdir()
    return baseline_dir, current_dir


TREE_BASE = {"speedup": 10.0, "bitwise_identical": True}


class TestCompareFile:
    def test_equal_results_pass(self):
        assert compare_file("BENCH_tree_kernels.json", TREE_BASE, dict(TREE_BASE)) == []

    def test_slowdown_within_tolerance_passes(self):
        current = {"speedup": 10.0 * (1.0 - TOLERANCE) + 0.01, "bitwise_identical": True}
        assert compare_file("BENCH_tree_kernels.json", TREE_BASE, current) == []

    def test_slowdown_beyond_tolerance_fails(self):
        current = {"speedup": 10.0 * (1.0 - TOLERANCE) - 0.1, "bitwise_identical": True}
        failures = compare_file("BENCH_tree_kernels.json", TREE_BASE, current)
        assert len(failures) == 1
        assert "below the baseline" in failures[0]

    def test_speedup_improvement_passes(self):
        current = {"speedup": 99.0, "bitwise_identical": True}
        assert compare_file("BENCH_tree_kernels.json", TREE_BASE, current) == []

    def test_equality_flip_fails_regardless_of_speed(self):
        current = {"speedup": 99.0, "bitwise_identical": False}
        failures = compare_file("BENCH_tree_kernels.json", TREE_BASE, current)
        assert len(failures) == 1
        assert "equality check changed" in failures[0]

    def test_missing_metric_fails(self):
        failures = compare_file("BENCH_tree_kernels.json", TREE_BASE, {})
        assert len(failures) == 2  # one per configured metric

    def test_nested_paths(self):
        baseline = {
            "groupby_agg": {"speedup": 8.0},
            "inner_join": {"speedup": 16.0},
        }
        current = {
            "groupby_agg": {"speedup": 7.9},
            "inner_join": {"speedup": 4.0},
        }
        failures = compare_file("BENCH_frame_ops.json", baseline, current)
        assert len(failures) == 1
        assert "inner_join.speedup" in failures[0]


ENGINE_BASE = {
    "executor": "thread",
    "workers": 4,
    "cpu_count": 4,
    "speedup": 4.0,
    "worker_speedup": 2.0,
    "bitwise_equal": True,
    "coalescing": {"distinct_jobs": 1, "result_matches_sync": True},
}


class TestContextSkip:
    """Baseline/fresh runs captured under different configs compare sanely."""

    def test_matching_context_still_gates_ratios(self):
        current = dict(ENGINE_BASE, speedup=1.0)
        failures = compare_file("BENCH_engine.json", ENGINE_BASE, current)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_different_cpu_count_skips_ratios(self):
        # a 4-core baseline vs a 1-core fresh run: ratios are incomparable,
        # so a collapsed speedup must not fail the gate
        current = dict(ENGINE_BASE, cpu_count=1, speedup=1.0, worker_speedup=0.9)
        assert compare_file("BENCH_engine.json", ENGINE_BASE, current) == []

    def test_different_executor_skips_ratios(self):
        current = dict(ENGINE_BASE, executor="process", speedup=1.0)
        assert compare_file("BENCH_engine.json", ENGINE_BASE, current) == []

    def test_different_workers_skips_ratios(self):
        current = dict(ENGINE_BASE, workers=1, speedup=1.0)
        assert compare_file("BENCH_engine.json", ENGINE_BASE, current) == []

    def test_context_key_on_one_side_only_skips_ratios(self):
        baseline = {k: v for k, v in ENGINE_BASE.items() if k != "cpu_count"}
        current = dict(ENGINE_BASE, speedup=1.0)
        assert compare_file("BENCH_engine.json", baseline, current) == []

    def test_context_keys_missing_on_both_sides_still_compare(self):
        # pre-context snapshots (no executor/workers/cpu_count keys) keep
        # gating exactly as before
        strip = lambda payload: {  # noqa: E731
            k: v for k, v in payload.items() if k not in ("executor", "workers", "cpu_count")
        }
        current = strip(dict(ENGINE_BASE, speedup=1.0))
        failures = compare_file("BENCH_engine.json", strip(ENGINE_BASE), current)
        assert len(failures) == 1

    def test_equality_metrics_never_skipped(self):
        current = dict(ENGINE_BASE, cpu_count=1, bitwise_equal=False)
        failures = compare_file("BENCH_engine.json", ENGINE_BASE, current)
        assert len(failures) == 1
        assert "equality check changed" in failures[0]

    def test_process_file_gated_like_engine_file(self):
        base = dict(ENGINE_BASE, executor="process")
        current = dict(base, worker_speedup=0.5)
        failures = compare_file("BENCH_engine_process.json", base, current)
        assert len(failures) == 1
        assert "worker_speedup" in failures[0]


class TestRun:
    def test_all_pass(self, tmp_path):
        baseline_dir, current_dir = make_dirs(tmp_path)
        write(baseline_dir / "BENCH_tree_kernels.json", TREE_BASE)
        write(current_dir / "BENCH_tree_kernels.json", dict(TREE_BASE))
        assert run(baseline_dir, current_dir) == 0

    def test_missing_fresh_result_fails(self, tmp_path):
        baseline_dir, current_dir = make_dirs(tmp_path)
        write(baseline_dir / "BENCH_tree_kernels.json", TREE_BASE)
        assert run(baseline_dir, current_dir) == 1

    def test_fresh_file_without_baseline_fails(self, tmp_path, capsys):
        # a benchmark landed without a committed baseline is silently
        # unguarded — the gate fails and tells you how to fix it
        baseline_dir, current_dir = make_dirs(tmp_path)
        write(baseline_dir / "BENCH_tree_kernels.json", TREE_BASE)
        write(current_dir / "BENCH_tree_kernels.json", dict(TREE_BASE))
        write(current_dir / "BENCH_brand_new.json", {"speedup": 1.0})
        assert run(baseline_dir, current_dir) == 1
        out = capsys.readouterr().out
        assert "BENCH_brand_new.json" in out
        assert "no committed baseline" in out
        assert "RATIO_METRICS" in out  # the message names the manifest to edit

    def test_no_baselines_at_all_fails(self, tmp_path):
        baseline_dir, current_dir = make_dirs(tmp_path)
        assert run(baseline_dir, current_dir) == 1

    def test_regression_fails(self, tmp_path):
        baseline_dir, current_dir = make_dirs(tmp_path)
        write(baseline_dir / "BENCH_tree_kernels.json", TREE_BASE)
        write(
            current_dir / "BENCH_tree_kernels.json",
            {"speedup": 1.0, "bitwise_identical": True},
        )
        assert run(baseline_dir, current_dir) == 1

    def test_committed_baselines_cover_every_gated_metric(self):
        # the real baselines must stay in sync with the comparator's manifest
        from benchmarks.check_regression import EQUALITY_METRICS, RATIO_METRICS, lookup

        baseline_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        manifest = set(RATIO_METRICS) | set(EQUALITY_METRICS)
        for name in manifest:
            payload = json.loads((baseline_dir / name).read_text())
            for path in RATIO_METRICS.get(name, []) + EQUALITY_METRICS.get(name, []):
                lookup(payload, path)  # KeyError = manifest/baseline drift
        committed = {path.name for path in baseline_dir.glob("BENCH_*.json")}
        orphans = committed - manifest
        assert not orphans, (
            f"baselines with no gated metrics (register them in RATIO_METRICS/"
            f"EQUALITY_METRICS): {sorted(orphans)}"
        )
