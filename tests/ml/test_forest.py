"""Unit tests for random forests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import RandomForestClassifier, RandomForestRegressor


class TestRandomForestClassifier:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 4))
        y = ((1.5 * X[:, 0] - 2.0 * X[:, 1] + 0.3 * rng.normal(size=400)) > 0).astype(float)
        model = RandomForestClassifier(n_estimators=25, max_depth=6, random_state=0, oob_score=True)
        return model.fit(X, y), X, y

    def test_training_accuracy(self, fitted):
        model, X, y = fitted
        assert model.score(X, y) > 0.9

    def test_probabilities_valid(self, fitted):
        model, X, _ = fitted
        proba = model.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_feature_importances_identify_signal(self, fitted):
        model, _, _ = fitted
        importances = model.feature_importances_
        assert importances.sum() == pytest.approx(1.0)
        # features 0 and 1 carry the signal; 2 and 3 are noise
        assert importances[0] + importances[1] > 0.7

    def test_oob_score_reasonable(self, fitted):
        model, _, _ = fitted
        assert 0.7 <= model.oob_score_ <= 1.0

    def test_reproducible_with_seed(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(150, 3))
        y = (X[:, 0] > 0).astype(float)
        a = RandomForestClassifier(n_estimators=10, random_state=42).fit(X, y)
        b = RandomForestClassifier(n_estimators=10, random_state=42).fit(X, y)
        np.testing.assert_allclose(a.predict_proba(X), b.predict_proba(X))
        np.testing.assert_allclose(a.feature_importances_, b.feature_importances_)

    def test_different_seeds_differ(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(150, 3))
        y = (X[:, 0] + 0.5 * rng.normal(size=150) > 0).astype(float)
        a = RandomForestClassifier(n_estimators=10, random_state=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=10, random_state=2).fit(X, y)
        assert not np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_n_estimators_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_without_bootstrap(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] > 0).astype(float)
        model = RandomForestClassifier(n_estimators=5, bootstrap=False, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_classes_preserved(self):
        X = np.random.default_rng(0).normal(size=(60, 2))
        y = np.where(X[:, 0] > 0, 7.0, 3.0)
        model = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert set(np.unique(model.predict(X))) <= {3.0, 7.0}

    def test_oob_score_with_class_subset_trees(self):
        # a rare, non-contiguous class label: many bootstrap samples miss it
        # entirely, so OOB scoring must align each tree's narrower probability
        # rows to the forest's classes_ by label rather than by position
        rng = np.random.default_rng(5)
        X = rng.normal(size=(120, 3))
        y = np.where(X[:, 0] > 0, 7.0, 3.0)
        y[:3] = 11.0  # rare third class with labels that are not 0..k-1
        model = RandomForestClassifier(
            n_estimators=15, max_depth=4, random_state=0, oob_score=True
        ).fit(X, y)
        assert any(
            tree.classes_.shape[0] < model.classes_.shape[0]
            for tree in model.estimators_
        ), "expected at least one tree fitted on a class subset"
        assert 0.0 <= model.oob_score_ <= 1.0
        assert model.oob_score_ > 0.7


class TestRandomForestRegressor:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(400, 3))
        y = 10 * X[:, 0] + 5 * np.sin(4 * X[:, 1]) + 0.2 * rng.normal(size=400)
        model = RandomForestRegressor(n_estimators=25, max_depth=8, random_state=0, oob_score=True)
        return model.fit(X, y), X, y

    def test_training_r2(self, fitted):
        model, X, y = fitted
        assert model.score(X, y) > 0.9

    def test_oob_r2(self, fitted):
        model, _, _ = fitted
        assert model.oob_score_ > 0.6

    def test_feature_importances_identify_signal(self, fitted):
        model, _, _ = fitted
        importances = model.feature_importances_
        assert importances[2] < importances[0]
        assert importances[2] < importances[1]

    def test_prediction_stays_in_convex_hull_of_targets(self, fitted):
        model, X, y = fitted
        predictions = model.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    def test_more_trees_reduce_variance(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(200, 2))
        y = 3 * X[:, 0] + rng.normal(size=200)
        X_test = rng.uniform(size=(100, 2))

        def prediction_spread(n_estimators):
            predictions = [
                RandomForestRegressor(n_estimators=n_estimators, random_state=seed, max_depth=4)
                .fit(X, y)
                .predict(X_test)
                for seed in range(4)
            ]
            return np.std(np.stack(predictions), axis=0).mean()

        assert prediction_spread(20) < prediction_spread(2)
