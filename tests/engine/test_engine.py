"""Engine-through-protocol tests: submission, coalescing, cancellation races.

Deterministic concurrency control comes from fake job-able actions patched
into :data:`repro.server.handlers.JOB_HANDLERS`: a *gate* action that blocks
its worker on an event, and a *spin* action that loops on its checkpoint —
so cancel-before-start, cancel-mid-run, and in-flight coalescing can be
exercised without timing-dependent sleeps.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.server.handlers as handlers
from repro.server import SystemDServer


class Gate:
    """A fake job handler that records runs and blocks until released."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.tags: list[str] = []
        self._lock = threading.Lock()

    def __call__(self, state, params, context):
        with self._lock:
            self.tags.append(params.get("tag", ""))
        self.started.set()
        assert self.release.wait(30), "gate was never released"
        context.checkpoint(1.0)
        return {"tag": params.get("tag", "")}


@pytest.fixture
def gate(monkeypatch):
    instance = Gate()
    monkeypatch.setitem(handlers.JOB_HANDLERS, "gate_test", instance)
    yield instance
    instance.release.set()  # never leave a worker blocked


@pytest.fixture
def spin(monkeypatch):
    """A fake handler that checkpoints in a loop until cancelled."""
    started = threading.Event()

    def handler(state, params, context):
        started.set()
        for step in range(4000):  # bounded: ~20s worst case, cancels in ms
            context.checkpoint(min(0.9, step / 4000))
            time.sleep(0.005)
        return {"finished": True}

    monkeypatch.setitem(handlers.JOB_HANDLERS, "spin_test", handler)
    return started


def make_server(workers: int = 1, retention: int = 16) -> SystemDServer:
    return SystemDServer(engine_workers=workers, job_retention=retention)


def submit(server, action, params=None, **extra):
    response = server.request(
        "submit", {"action": action, "params": params or {}, **extra}
    )
    assert response.ok, response.error
    return response.data


class TestSubmission:
    def test_job_result_matches_sync_response(self):
        server = make_server(workers=2)
        loaded = server.request(
            "load_use_case", use_case="deal_closing", dataset_kwargs={"n_prospects": 150}
        )
        assert loaded.ok, loaded.error
        perturbations = {"Open Marketing Email": 40.0}
        sync = server.request("sensitivity", perturbations=perturbations)
        assert sync.ok, sync.error
        data = submit(server, "sensitivity", {"perturbations": perturbations})
        result = server.request("job_result", job_id=data["job"]["job_id"], timeout_s=60)
        assert result.ok, result.error
        assert result.data["result"] == sync.data
        assert result.data["job"]["state"] == "done"
        assert result.data["job"]["progress"] == 1.0
        server.close()

    def test_non_jobable_action_is_rejected(self):
        server = make_server()
        response = server.request("submit", {"action": "list_use_cases"})
        assert not response.ok
        assert "cannot run as a job" in response.error

    def test_unknown_session_is_rejected(self):
        server = make_server()
        response = server.request(
            "submit", {"action": "sensitivity", "params": {}, "session_id": "ghost"}
        )
        assert not response.ok
        assert "unknown session" in response.error

    def test_missing_action_is_rejected(self):
        server = make_server()
        response = server.request("submit", {})
        assert not response.ok
        assert "'action' parameter is required" in response.error

    def test_job_failure_is_reported_not_raised(self):
        server = make_server()
        # sensitivity without a loaded dataset fails inside the worker
        data = submit(server, "sensitivity", {"perturbations": {"X": 1.0}})
        result = server.request("job_result", job_id=data["job"]["job_id"], timeout_s=60)
        assert not result.ok
        assert "failed" in result.error
        status = server.request("job_status", job_id=data["job"]["job_id"])
        assert status.ok
        assert status.data["job"]["state"] == "failed"
        assert "load_use_case" in status.data["job"]["error"]
        server.close()


class TestCoalescing:
    def test_identical_inflight_submissions_attach(self, gate):
        server = make_server(workers=1)
        first = submit(server, "gate_test", {"tag": "a"})
        assert gate.started.wait(10)
        second = submit(server, "gate_test", {"tag": "a"})
        third = submit(server, "gate_test", {"tag": "a"})
        assert not first["coalesced"]
        assert second["coalesced"] and third["coalesced"]
        assert second["job"]["job_id"] == first["job"]["job_id"]
        assert third["job"]["attached"] == 3
        gate.release.set()
        result = server.request("job_result", job_id=first["job"]["job_id"], timeout_s=60)
        assert result.ok, result.error
        assert gate.tags == ["a"]  # one execution served all three submitters
        server.close()

    def test_different_params_do_not_coalesce(self, gate):
        server = make_server(workers=1)
        first = submit(server, "gate_test", {"tag": "a"})
        assert gate.started.wait(10)
        other = submit(server, "gate_test", {"tag": "b"})
        assert not other["coalesced"]
        assert other["job"]["job_id"] != first["job"]["job_id"]
        gate.release.set()
        for data in (first, other):
            assert server.request(
                "job_result", job_id=data["job"]["job_id"], timeout_s=60
            ).ok
        assert sorted(gate.tags) == ["a", "b"]
        server.close()

    def test_finished_job_is_not_reused(self, gate):
        server = make_server(workers=1)
        first = submit(server, "gate_test", {"tag": "a"})
        gate.release.set()
        assert server.request("job_result", job_id=first["job"]["job_id"], timeout_s=60).ok
        again = submit(server, "gate_test", {"tag": "a"})
        assert not again["coalesced"]
        assert again["job"]["job_id"] != first["job"]["job_id"]
        assert server.request("job_result", job_id=again["job"]["job_id"], timeout_s=60).ok
        assert gate.tags == ["a", "a"]
        server.close()


class TestCancellation:
    def test_cancel_before_start(self, gate):
        server = make_server(workers=1)
        blocker = submit(server, "gate_test", {"tag": "blocker"})
        assert gate.started.wait(10)
        queued = submit(server, "gate_test", {"tag": "queued"})
        cancelled = server.request("cancel_job", job_id=queued["job"]["job_id"])
        assert cancelled.ok
        assert cancelled.data["job"]["state"] == "cancelled"
        gate.release.set()
        assert server.request("job_result", job_id=blocker["job"]["job_id"], timeout_s=60).ok
        result = server.request("job_result", job_id=queued["job"]["job_id"], timeout_s=60)
        assert not result.ok
        assert "cancelled" in result.error
        assert gate.tags == ["blocker"]  # the queued job never ran
        server.close()

    def test_cancel_mid_run_stops_at_next_checkpoint(self, spin):
        server = make_server(workers=1)
        data = submit(server, "spin_test", {})
        assert spin.wait(10)
        response = server.request("cancel_job", job_id=data["job"]["job_id"])
        assert response.ok
        result = server.request("job_result", job_id=data["job"]["job_id"], timeout_s=60)
        assert not result.ok
        status = server.request("job_status", job_id=data["job"]["job_id"])
        assert status.data["job"]["state"] == "cancelled"
        assert status.data["job"]["progress"] < 1.0
        server.close()

    def test_cancel_terminal_job_is_a_noop(self, gate):
        server = make_server(workers=1)
        data = submit(server, "gate_test", {"tag": "a"})
        gate.release.set()
        assert server.request("job_result", job_id=data["job"]["job_id"], timeout_s=60).ok
        response = server.request("cancel_job", job_id=data["job"]["job_id"])
        assert response.ok
        assert response.data["job"]["state"] == "done"
        server.close()

    def test_cancel_unknown_job(self):
        server = make_server()
        response = server.request("cancel_job", job_id="j-missing")
        assert not response.ok
        assert "unknown job" in response.error


class TestPrioritiesAndIntrospection:
    def test_higher_priority_jobs_run_first(self, gate):
        server = make_server(workers=1)
        submit(server, "gate_test", {"tag": "blocker"})
        assert gate.started.wait(10)
        low = submit(server, "gate_test", {"tag": "low"})
        high = submit(server, "gate_test", {"tag": "high"}, priority=5)
        gate.release.set()
        for data in (low, high):
            assert server.request(
                "job_result", job_id=data["job"]["job_id"], timeout_s=60
            ).ok
        assert gate.tags == ["blocker", "high", "low"]
        server.close()

    def test_list_jobs_filters_and_counters(self, gate):
        server = make_server(workers=1)
        submit(server, "gate_test", {"tag": "a"})
        assert gate.started.wait(10)
        submit(server, "gate_test", {"tag": "a"})  # coalesces
        listing = server.request("list_jobs")
        assert listing.ok
        assert len(listing.data["jobs"]) == 1
        assert listing.data["jobs"][0]["attached"] == 2
        assert listing.data["engine"]["coalesced_total"] == 1
        running = server.request("list_jobs", states=["running"])
        assert len(running.data["jobs"]) == 1
        done = server.request("list_jobs", states=["done"])
        assert done.data["jobs"] == []
        gate.release.set()
        server.close()

    def test_job_result_without_wait_reports_running(self, gate):
        server = make_server(workers=1)
        data = submit(server, "gate_test", {"tag": "a"})
        assert gate.started.wait(10)
        result = server.request("job_result", job_id=data["job"]["job_id"], wait=False)
        assert not result.ok
        assert "still running" in result.error
        gate.release.set()
        server.close()

    def test_store_eviction_forgets_old_jobs(self, gate):
        server = make_server(workers=1, retention=2)
        gate.release.set()  # jobs run straight through
        ids = []
        for index in range(4):
            data = submit(server, "gate_test", {"tag": f"t{index}"})
            response = server.request(
                "job_result", job_id=data["job"]["job_id"], timeout_s=60
            )
            assert response.ok, response.error
            ids.append(data["job"]["job_id"])
        evicted = server.request("job_status", job_id=ids[0])
        assert not evicted.ok
        assert "unknown job" in evicted.error
        retained = server.request("job_status", job_id=ids[-1])
        assert retained.ok
        stats = server.request("server_stats")
        assert stats.data["engine"]["store"]["evicted_total"] == 2
        server.close()

    def test_server_stats_reports_engine_and_latency_percentiles(self):
        server = make_server()
        server.request("list_use_cases")
        stats = server.request("server_stats")
        assert stats.ok
        engine = stats.data["engine"]
        assert engine["pool"]["workers"] == 1
        assert engine["submitted_total"] == 0
        latency = stats.data["requests"]["latency_ms"]
        assert latency["p50"] is not None
        assert latency["p95"] >= latency["p50"]
