"""Bounded job store: every tracked job, with LRU retention of finished ones.

The store answers three questions the engine asks constantly:

* *is an identical analysis already in flight?* — the coalescing index maps a
  submission's coalesce key to its pending/running job, so duplicate
  submissions attach to one execution instead of recomputing
  (:meth:`JobStore.coalesce_or_add` makes that find-or-create atomic);
* *what is job X?* — id lookup for ``job_status`` / ``job_result`` /
  ``cancel_job``, touching the LRU order of finished jobs so recently polled
  results stay retained;
* *what jobs exist?* — filtered listings for ``list_jobs``.

Finished jobs (done/failed/cancelled) are retained up to ``max_finished``;
beyond that the least recently touched finished job is forgotten entirely, so
a long-lived server cannot pin unbounded result payloads.  In-flight jobs are
never evicted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable

from ..persist import JOB_INTERRUPTED_REASON, MemoryBackend, StateBackend
from .job import Job

__all__ = ["JobStore", "UnknownJobError"]


class UnknownJobError(KeyError):
    """Raised when a job id is not (or no longer) tracked by the store."""


class JobStore:
    """Thread-safe map from job id to :class:`~repro.engine.job.Job`.

    Every tracked job is journaled to a :class:`~repro.persist.StateBackend`
    — a light ``pending`` record at registration, the full result-bearing
    snapshot at the terminal transition — so ``job_result`` payloads survive
    a restart when the backend is durable (:meth:`restore`).  The default
    :class:`~repro.persist.MemoryBackend` keeps the pre-persistence
    semantics: records die with the process.

    Parameters
    ----------
    max_finished:
        Finished jobs retained before LRU eviction; ``0`` forgets every job
        the moment it finishes (status polls then report it unknown).
        Retention is durable: evicting a finished job deletes its journal
        record too, so a restart never resurrects evicted results.
    backend:
        The durable-state backend to journal into.
    """

    #: Attributes whose mutations must flow through a persistence hook —
    #: the PER001 check rule enforces this contract statically.
    _PERSISTED_FIELDS = ("_jobs",)

    def __init__(
        self, max_finished: int = 256, *, backend: StateBackend | None = None
    ) -> None:
        if max_finished < 0:
            raise ValueError("max_finished must be >= 0")
        self.max_finished = max_finished
        self.backend = backend if backend is not None else MemoryBackend()
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._finished_order: OrderedDict[str, None] = OrderedDict()
        self._inflight: dict[str, str] = {}
        self._added_total = 0
        self._coalesced_total = 0
        self._evicted_total = 0
        self._restored_total = 0
        self._interrupted_total = 0

    # ------------------------------------------------------------------ #
    def _job_record(self, job: Job, *, include_result: bool) -> dict[str, Any]:
        """The journaled form of a job: its snapshot plus the raw params
        (``to_dict`` omits params, but restore needs them for filters like
        ``sweep_result``'s space-hash lookup)."""
        record = job.to_dict(include_result=include_result)
        record["params"] = job.params
        return record

    def restore(self) -> int:
        """Materialise journaled jobs at engine startup.

        Non-terminal records are first re-marked ``failed`` with
        :data:`~repro.persist.JOB_INTERRUPTED_REASON` — their execution died
        with the previous process and silently dropping them would leave
        clients polling forever.  Every record then becomes a frozen
        :class:`Job` whose snapshot (durations and results included) is
        reported verbatim, so recovered ``job_result`` payloads are
        bitwise-identical to pre-restart ones.  Recovered jobs enrol in the
        finished-retention LRU as the oldest entries (their monotonic
        submission clocks did not survive; they order by job id at epoch 0).
        Returns the number of jobs restored.
        """
        with self._lock:
            self._interrupted_total += self.backend.mark_interrupted(
                JOB_INTERRUPTED_REASON
            )
            records = sorted(self.backend.load_jobs(), key=lambda r: r["job_id"])
            for record in records:
                snapshot = dict(record["snapshot"])
                params = snapshot.pop("params", {})
                job = Job.from_snapshot(snapshot, params=params)
                self._jobs[job.job_id] = job
                self._finished_order[job.job_id] = None
                self._restored_total += 1
            while len(self._finished_order) > self.max_finished:
                self._evict_one_finished()
            return self._restored_total

    # ------------------------------------------------------------------ #
    def coalesce_or_add(self, key: str, factory: Callable[[], Job]) -> tuple[Job, bool]:
        """Attach to the in-flight job for ``key``, or register a new one.

        Returns ``(job, attached)``; ``attached`` is True when the submission
        coalesced onto an existing pending/running job (whose ``attached``
        count is incremented) instead of creating one.  An empty key never
        coalesces.  The check-and-register is atomic, so two racing identical
        submissions cannot both create a job.
        """
        with self._lock:
            if key:
                inflight_id = self._inflight.get(key)
                if inflight_id is not None:
                    job = self._jobs.get(inflight_id)
                    if job is not None and not job.is_terminal and not job.cancel_requested:
                        job.attach()
                        self._coalesced_total += 1
                        return job, True
            job = factory()
            job.journal = self._journal_terminal
            self.backend.save_job(
                job.job_id, job.state, self._job_record(job, include_result=False)
            )
            self._jobs[job.job_id] = job
            if key:
                self._inflight[key] = job.job_id
            self._added_total += 1
            return job, False

    def get(self, job_id: str) -> Job:
        """Return a tracked job (refreshing its retention recency when it is
        finished); unknown or evicted ids raise :class:`UnknownJobError`."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            if job_id in self._finished_order:
                self._finished_order.move_to_end(job_id)
            return job

    def _journal_terminal(self, job: Job) -> None:
        """Persist a job's result-bearing terminal snapshot.

        Bound as the job's ``journal`` hook at registration, so it runs on
        the terminal transition *before* the done event releases result
        waiters (see ``Job._publish_terminal``): a client that observed a
        ``job_result`` is guaranteed the record already hit the backend.
        """
        with self._lock:
            self.backend.save_job(
                job.job_id, job.state, self._job_record(job, include_result=True)
            )

    def mark_finished(self, job: Job) -> None:
        """Record that ``job`` reached a terminal state: release its coalesce
        key and enrol it in the bounded finished-retention set.

        The result-bearing snapshot is NOT re-journaled here when the job
        carries the store's ``journal`` hook — ``Job._publish_terminal``
        already wrote it before any waiter was released, and the terminal
        snapshot of a terminal job cannot have changed since.  The write only
        happens for hook-less jobs (constructed outside ``coalesce_or_add``)
        so their results are journaled at all.
        """
        with self._lock:
            if self._inflight.get(job.coalesce_key) == job.job_id:
                del self._inflight[job.coalesce_key]
            if job.job_id not in self._jobs:
                return
            if job.journal is None:
                self.backend.save_job(
                    job.job_id, job.state, self._job_record(job, include_result=True)
                )
            self._finished_order[job.job_id] = None
            self._finished_order.move_to_end(job.job_id)
            while len(self._finished_order) > self.max_finished:
                self._evict_one_finished()

    def _evict_one_finished(self) -> None:
        """Forget the least recently touched finished job, journal included
        (callers hold the lock)."""
        evicted_id, _ = self._finished_order.popitem(last=False)
        self._jobs.pop(evicted_id, None)
        self.backend.delete_job(evicted_id)
        self._evicted_total += 1

    def list_jobs(
        self,
        *,
        session_id: str | None = None,
        states: Iterable[str] | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[Job]:
        """Tracked jobs, oldest submission first, optionally filtered.

        Ordering is stable — ``(submitted_at, job_id)`` — so ``limit`` /
        ``offset`` windows partition the listing consistently across calls
        (new arrivals only ever append past the cursor).
        """
        wanted = frozenset(states) if states is not None else None
        with self._lock:
            jobs = [
                job
                for job in self._jobs.values()
                if (session_id is None or job.session_id == session_id)
                and (wanted is None or job.state in wanted)
            ]
        jobs = sorted(jobs, key=lambda job: (job.submitted_at, job.job_id))
        offset = max(0, int(offset))
        if offset:
            jobs = jobs[offset:]
        if limit is not None:
            jobs = jobs[: max(0, int(limit))]
        return jobs

    def count(
        self,
        *,
        session_id: str | None = None,
        states: Iterable[str] | None = None,
    ) -> int:
        """Number of tracked jobs matching the filters (ignores pagination)."""
        wanted = frozenset(states) if states is not None else None
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if (session_id is None or job.session_id == session_id)
                and (wanted is None or job.state in wanted)
            )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __contains__(self, job_id: object) -> bool:
        with self._lock:
            return job_id in self._jobs

    def stats(self) -> dict[str, Any]:
        """Store-level counters for the engine's ``server_stats`` block."""
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "tracked": len(self._jobs),
                "inflight_keys": len(self._inflight),
                "finished_retained": len(self._finished_order),
                "max_finished": self.max_finished,
                "by_state": by_state,
                "added_total": self._added_total,
                "coalesced_total": self._coalesced_total,
                "evicted_total": self._evicted_total,
                "restored_total": self._restored_total,
                "interrupted_total": self._interrupted_total,
            }
