"""The grid kernel: one forest pass scores an entire scenario grid.

Looping :func:`~repro.core.sensitivity.run_sensitivity` over a scenario grid
traverses every tree once per ``(scenario, row)`` pair — for a 1 000-scenario
sweep that is a thousand full forest traversals of work that is almost
entirely redundant, because scenarios only rewrite the few swept columns and
every tree decision on an unswept feature is scenario-independent.  This
kernel exploits two structural facts to evaluate the *whole cartesian grid*
in one traversal per tree:

1. **Monotone perturbations ⇒ interval decisions.**  Percentage and absolute
   perturbations are monotone in the amount (clipping preserves this), so
   with an axis's amounts sorted ascending, the set of levels that sends a
   row *left* at a node testing that axis's driver is a prefix or suffix of
   the level order — an **interval**, whose complement is also an interval.
2. **Box propagation.**  A traversal lane therefore never needs one slot per
   scenario: it carries a per-axis level interval (a *box* of the grid).  At
   a node on an unswept feature the whole box follows one child (the
   decision is precomputed from the baseline column); at a node on a swept
   axis the box splits into at most two boxes.  Each ``(tree, row)`` pair
   ends at a handful of leaf boxes instead of ``n_scenarios`` leaves.

Materialisation stays **bitwise identical** to the per-scenario path: each
tree's boxes are unrolled into runs along the innermost grid axis, the runs'
leaf *node ids* (exact integers) become a telescoping ``±id`` difference
array (one ``bincount``), one flat integer ``cumsum`` — exact in float64 —
rebuilds the dense leaf-id surface, the ids gather the very leaf payload
floats the per-scenario traversal would read, and trees accumulate in
ensemble order.  Every ``(scenario, row)`` prediction — and every KPI
aggregated from them — therefore matches
:meth:`~repro.core.model_manager.ModelManager.predict_kpi_matrix` bit for
bit.  The planner falls back to chunked
:meth:`~repro.core.model_manager.ModelManager.predict_kpi_batch` whenever the
kernel does not apply (non-forest models, sampled or constrained spaces); the
KPI values are identical either way, only the speed differs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..core.model_manager import ModelManager
from .space import ScenarioSpace

__all__ = ["grid_sweep_kpis", "grid_kernel_applies", "MAX_GRID_CELLS", "MAX_AXIS_LEVELS"]

#: Upper bound on ``n_scenarios × n_rows`` grid cells the kernel will
#: materialise (the prediction surface is one float64 per cell).
MAX_GRID_CELLS = 32_000_000

#: Levels per axis the kernel supports (its lane boxes and decision cuts are
#: int16); longer axes fall back to the chunked path.
MAX_AXIS_LEVELS = 32_000


def grid_kernel_applies(manager: ModelManager, space: ScenarioSpace) -> bool:
    """Whether :func:`grid_sweep_kpis` will score this (manager, space) pair.

    Cheap structural check (no scoring): exhaustive unconstrained space, a
    kernel-compiled classifier forest, and a grid small enough to
    materialise.  The kernel itself may still fall back in one rare case —
    an interval-property violation — which this probe does not predict.
    """
    if space.sample is not None or space.constraints:
        return False
    model = manager.model
    if getattr(model, "kernel_", None) is None or not manager.kpi.is_discrete:
        return False
    if getattr(model, "classes_", None) is None:
        return False
    sizes = [len(axis.amounts) for axis in space.axes]
    if max(sizes) > MAX_AXIS_LEVELS:
        return False
    return int(np.prod(sizes)) * manager.frame.n_rows <= MAX_GRID_CELLS


def grid_sweep_kpis(
    manager: ModelManager,
    space: ScenarioSpace,
    *,
    checkpoint: Callable[[float], None] | None = None,
    progress_share: float = 1.0,
) -> np.ndarray | None:
    """KPIs of every grid scenario in enumeration order, or None if the
    kernel does not apply.

    Applies to exhaustive, unconstrained spaces scored by a kernel-compiled
    forest classifier (the model family every discrete-KPI session trains).
    ``checkpoint`` is called after each tree with the completed fraction
    scaled by ``progress_share``.
    """
    if not grid_kernel_applies(manager, space):
        return None
    model = manager.model
    kernel = model.kernel_
    classes = model.classes_

    X = manager.driver_matrix()
    n_rows = X.shape[0]
    sizes = [len(axis.amounts) for axis in space.axes]
    n_scenarios = int(np.prod(sizes))

    # --- per-axis tables: sorted levels and their perturbed columns ------- #
    # The interval property needs amounts ascending; `orders` maps sorted
    # level positions back to the axis's enumeration order at the end.
    columns = [manager.drivers.index(axis.driver) for axis in space.axes]
    orders = [np.argsort(np.asarray(axis.amounts, dtype=np.float64)) for axis in space.axes]
    perturbed = [
        np.stack(
            [
                axis.perturbation(axis.amounts[level]).apply_to_values(X[:, column])
                for level in order
            ]
        )
        for axis, column, order in zip(space.axes, columns, orders)
    ]

    # --- per-node decision tables ----------------------------------------- #
    # Unswept features: one baseline decision bit per (node, row).  Leaves
    # self-loop via the nav arrays, so their bits are never consulted.
    feature = kernel._nav_feature
    threshold = kernel._nav_threshold
    baseline_go_left = X[:, feature].T <= threshold[:, None]

    # Swept axes: the left-going level interval (and its complement) per
    # (node, row).  Monotonicity makes both intervals; verify and bail out
    # to the fallback path on any violation rather than risk a wrong answer.
    axis_of_node = np.full(feature.shape[0], -1, dtype=np.int8)
    slot_of_node = np.zeros(feature.shape[0], dtype=np.intp)
    cuts: list[tuple[np.ndarray, ...]] = []
    is_leaf = kernel.feature < 0
    for axis_index, column in enumerate(columns):
        nodes = np.flatnonzero((kernel.feature == column) & ~is_leaf)
        axis_of_node[nodes] = axis_index
        slot_of_node[nodes] = np.arange(nodes.shape[0])
        decisions = (
            perturbed[axis_index][None, :, :] <= kernel.threshold[nodes][:, None, None]
        )
        n_true = decisions.sum(axis=1)
        first = decisions.argmax(axis=1)
        last = decisions.shape[1] - 1 - decisions[:, ::-1, :].argmax(axis=1)
        interval = (n_true == 0) | (last - first + 1 == n_true)
        prefix_or_suffix = (n_true == 0) | (first == 0) | (
            last == decisions.shape[1] - 1
        )
        if not (interval & prefix_or_suffix).all():  # pragma: no cover - guard
            return None
        left_lo = np.where(n_true > 0, first, 0).astype(np.int16)
        left_hi = (left_lo + n_true).astype(np.int16)
        # the complement of a prefix is a suffix and vice versa
        right_lo = np.where(left_lo > 0, 0, left_hi).astype(np.int16)
        right_hi = np.where(left_lo > 0, left_lo, len(orders[axis_index])).astype(
            np.int16
        )
        cuts.append((left_lo, left_hi, right_lo, right_hi))

    # --- box-propagating traversal (all trees at once) --------------------- #
    n_axes = len(space.axes)
    lane_node = np.repeat(kernel.roots, n_rows)
    lane_row = np.tile(np.arange(n_rows, dtype=np.intp), kernel.n_trees)
    lane_lo = [np.zeros(lane_node.shape[0], dtype=np.int16) for _ in range(n_axes)]
    lane_hi = [
        np.full(lane_node.shape[0], sizes[i], dtype=np.int16) for i in range(n_axes)
    ]
    out_node: list[np.ndarray] = []
    out_row: list[np.ndarray] = []
    out_lo: list[list[np.ndarray]] = [[] for _ in range(n_axes)]
    out_hi: list[list[np.ndarray]] = [[] for _ in range(n_axes)]
    while lane_node.shape[0]:
        at_leaf = kernel.feature[lane_node] < 0
        if at_leaf.any():
            out_node.append(lane_node[at_leaf])
            out_row.append(lane_row[at_leaf])
            for i in range(n_axes):
                out_lo[i].append(lane_lo[i][at_leaf])
                out_hi[i].append(lane_hi[i][at_leaf])
            keep = ~at_leaf
            lane_node = lane_node[keep]
            lane_row = lane_row[keep]
            lane_lo = [lo[keep] for lo in lane_lo]
            lane_hi = [hi[keep] for hi in lane_hi]
            if not lane_node.shape[0]:
                break
        lane_axis = axis_of_node[lane_node]
        next_node: list[np.ndarray] = []
        next_row: list[np.ndarray] = []
        next_lo: list[list[np.ndarray]] = [[] for _ in range(n_axes)]
        next_hi: list[list[np.ndarray]] = [[] for _ in range(n_axes)]

        unswept = lane_axis < 0
        if unswept.any():
            node = lane_node[unswept]
            row = lane_row[unswept]
            go_left = baseline_go_left[node, row]
            next_node.append(np.where(go_left, kernel.left[node], kernel.right[node]))
            next_row.append(row)
            for i in range(n_axes):
                next_lo[i].append(lane_lo[i][unswept])
                next_hi[i].append(lane_hi[i][unswept])

        for axis_index in range(n_axes):
            on_axis = lane_axis == axis_index
            if not on_axis.any():
                continue
            node = lane_node[on_axis]
            row = lane_row[on_axis]
            slot = slot_of_node[node]
            left_lo, left_hi, right_lo, right_hi = cuts[axis_index]
            for child, node_lo, node_hi in (
                (kernel.left, left_lo, left_hi),
                (kernel.right, right_lo, right_hi),
            ):
                box_lo = np.maximum(lane_lo[axis_index][on_axis], node_lo[slot, row])
                box_hi = np.minimum(lane_hi[axis_index][on_axis], node_hi[slot, row])
                alive = box_lo < box_hi
                if not alive.any():
                    continue
                next_node.append(child[node[alive]])
                next_row.append(row[alive])
                for i in range(n_axes):
                    if i == axis_index:
                        next_lo[i].append(box_lo[alive])
                        next_hi[i].append(box_hi[alive])
                    else:
                        next_lo[i].append(lane_lo[i][on_axis][alive])
                        next_hi[i].append(lane_hi[i][on_axis][alive])

        lane_node = np.concatenate(next_node) if next_node else np.empty(0, dtype=np.intp)
        lane_row = np.concatenate(next_row) if next_row else np.empty(0, dtype=np.intp)
        lane_lo = [
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int16)
            for parts in next_lo
        ]
        lane_hi = [
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int16)
            for parts in next_hi
        ]

    leaf_node = np.concatenate(out_node)
    leaf_row = np.concatenate(out_row)
    leaf_lo = [np.concatenate(parts).astype(np.int64) for parts in out_lo]
    leaf_hi = [np.concatenate(parts).astype(np.int64) for parts in out_hi]

    # --- per-tree materialisation, accumulated in ensemble order ----------- #
    # `positive_column` mirrors ModelManager.predict_rows_matrix exactly.
    class_list = list(classes)
    positive_column = (
        class_list.index(1.0) if 1.0 in class_list else len(class_list) - 1
    )
    leaf_payload = np.ascontiguousarray(kernel.value[:, positive_column])

    tree_of_leaf = np.searchsorted(kernel.roots, leaf_node, side="right") - 1
    tree_order = np.argsort(tree_of_leaf, kind="stable")
    tree_bounds = np.searchsorted(tree_of_leaf[tree_order], np.arange(kernel.n_trees + 1))

    # grid cell layout: (row, g_0, ..., g_{k-1}) with the *largest* axis
    # innermost — boxes unroll into runs along it, so the longer that axis,
    # the fewer, longer runs each tree materialises
    grid_axes = list(np.argsort(sizes, kind="stable"))
    grid_sizes = [sizes[axis] for axis in grid_axes]
    strides = [1]
    for size in reversed(grid_sizes[1:]):
        strides.insert(0, strides[0] * size)
    total_cells = n_scenarios * n_rows
    aggregate = np.zeros(total_cells)
    run_axis = grid_axes[-1]
    for tree_index in range(kernel.n_trees):
        segment = tree_order[tree_bounds[tree_index] : tree_bounds[tree_index + 1]]
        # unroll boxes into runs along the innermost axis: expand over the
        # outer grid axes, accumulating each record's flat start offset
        record = segment
        offset = leaf_row[segment] * np.int64(n_scenarios)
        for position, axis in enumerate(grid_axes[:-1]):
            width = leaf_hi[axis][record] - leaf_lo[axis][record]
            expanded = np.repeat(np.arange(record.shape[0]), width)
            local = np.arange(expanded.shape[0]) - np.repeat(
                np.cumsum(width) - width, width
            )
            lows = leaf_lo[axis][record][expanded]
            offset = offset[expanded] + (lows + local) * strides[position]
            record = record[expanded]
        starts = offset + leaf_lo[run_axis][record]
        ends = offset + leaf_hi[run_axis][record]
        # telescoping ±id difference array: one bincount, one flat cumsum —
        # every sum is integer-valued, so float64 reconstructs the leaf-id
        # surface exactly
        ids = leaf_node[record].astype(np.float64)
        surface = np.cumsum(
            np.bincount(
                np.concatenate([starts, ends]),
                weights=np.concatenate([ids, -ids]),
                minlength=total_cells + 1,
            )[:total_cells]
        )
        aggregate += leaf_payload[surface.astype(np.intp)]
        if checkpoint is not None:
            checkpoint(progress_share * (tree_index + 1) / kernel.n_trees)

    predictions = aggregate / kernel.n_trees

    # --- back to enumeration order, then aggregate per scenario ------------ #
    # one (scenario, row) gather relabels (sorted level, reordered axis) grid
    # positions into the space's enumeration order; values only move, no
    # arithmetic happens
    scenario_rows = np.ascontiguousarray(predictions.reshape(n_rows, n_scenarios).T)
    inverse = [np.argsort(order, kind="stable") for order in orders]
    grid_stride_of_axis = {axis: strides[i] for i, axis in enumerate(grid_axes)}
    combo = np.zeros(1, dtype=np.intp)
    for axis_index in range(n_axes):
        contribution = inverse[axis_index] * grid_stride_of_axis[axis_index]
        combo = (combo[:, None] + contribution[None, :]).reshape(-1)
    scenario_rows = scenario_rows[combo]
    return np.array(
        [manager.kpi.aggregate(scenario_rows[index]) for index in range(n_scenarios)]
    )
