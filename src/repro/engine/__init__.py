"""Asynchronous job-execution subsystem for long-running analyses.

The interactive protocol must stay responsive while heavy analyses
(sensitivity sweeps, goal inversion, driver importance) run; this package
decouples request handling from analysis execution:

* :mod:`~repro.engine.job` — the :class:`Job` lifecycle (``pending → running
  → done/failed/cancelled``) with priorities, progress fractions, and
  cooperative cancellation via :class:`JobContext` checkpoints;
* :mod:`~repro.engine.pool` — a thread-based :class:`WorkerPool` draining a
  priority queue;
* :mod:`~repro.engine.process` — a spawn-safe :class:`ProcessExecutor` that
  fans the CPU-bound job kinds out across persistent worker processes
  (escaping the GIL), shipping fitted models once per fingerprint and
  threading cancellation/progress over the process boundary;
* :mod:`~repro.engine.units` — the picklable work units those processes
  execute, decomposed so merged results stay bitwise identical to the
  serial paths;
* :mod:`~repro.engine.events` — a per-job :class:`JobEventBus` (bounded
  ring buffers, monotonic sequence ids, replay-from-seq, multi-subscriber
  fan-out) that jobs publish progress ticks, incremental result chunks, and
  terminal events to — the backbone of the SSE streaming endpoint;
* :mod:`~repro.engine.store` — a bounded :class:`JobStore` with LRU
  retention of finished results and the coalescing index that lets identical
  in-flight submissions share one execution;
* :mod:`~repro.engine.engine` — :class:`AnalysisEngine`, the facade the
  server's ``submit`` / ``job_status`` / ``job_result`` / ``cancel_job`` /
  ``list_jobs`` actions delegate to.
"""

from .engine import PROCESS_ACTIONS, AnalysisEngine
from .events import TERMINAL_EVENTS, JobEvent, JobEventBus, Subscription
from .job import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobCancelled,
    JobContext,
)
from .pool import WorkerPool
from .process import ProcessExecutor, WorkerUnitError
from .store import JobStore, UnknownJobError

__all__ = [
    "AnalysisEngine",
    "Job",
    "JobContext",
    "JobCancelled",
    "JobEvent",
    "JobEventBus",
    "Subscription",
    "TERMINAL_EVENTS",
    "JobStore",
    "PROCESS_ACTIONS",
    "ProcessExecutor",
    "UnknownJobError",
    "WorkerPool",
    "WorkerUnitError",
    "JOB_STATES",
    "TERMINAL_STATES",
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
]
