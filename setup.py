"""Setuptools entry point.

Kept alongside pyproject.toml so the package can be installed editable in
offline environments whose setuptools/wheel combination predates PEP 660
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
