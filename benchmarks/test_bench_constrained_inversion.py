"""E3 (Figure 2-I): goal inversion and constrained analysis, deal-closing use case.

Paper's reported result: constraining *Open Marketing Email* to a +40%..+80%
increase and letting the optimiser drive the remaining activities yields a
maximal deal-closing rate of 90.54%, an up-lift of +48.65 points over the
original data; free goal inversion returns the best attainable KPI, the model
confidence, and a set of driver values.

This benchmark regenerates both the free and the constrained optimisation and
times the constrained run (the expensive interaction in the paper's UI).
"""

from __future__ import annotations

from .conftest import print_table

DRIVER = "Open Marketing Email"
PAPER_CONSTRAINED_KPI = 90.54
PAPER_CONSTRAINED_UPLIFT = 48.65


def test_figure2i_constrained_goal_inversion(benchmark, deal_session):
    constrained = benchmark.pedantic(
        lambda: deal_session.constrained_analysis(
            {DRIVER: (40.0, 80.0)}, n_calls=50, track_as="bench constrained"
        ),
        rounds=1,
        iterations=1,
    )
    free = deal_session.goal_inversion("maximize", n_calls=50, track_as="bench free")

    rows = [
        {
            "analysis": "free goal inversion",
            "best_rate_%": free.best_kpi,
            "uplift_points": free.uplift,
            "confidence": free.model_confidence,
        },
        {
            "analysis": f"constrained ({DRIVER} +40..80%)",
            "best_rate_%": constrained.best_kpi,
            "uplift_points": constrained.uplift,
            "confidence": constrained.model_confidence,
        },
    ]
    print_table("Figure 2-I: goal inversion vs constrained analysis", rows)
    changes = sorted(constrained.driver_changes.items(), key=lambda kv: -abs(kv[1]))
    print_table(
        "recommended driver changes (constrained, top 6)",
        [{"driver": d, "change_%": c} for d, c in changes[:6]],
    )
    print(
        f"paper:    constrained max {PAPER_CONSTRAINED_KPI:.2f}% "
        f"(up-lift {PAPER_CONSTRAINED_UPLIFT:+.2f})"
    )
    print(
        f"measured: constrained max {constrained.best_kpi:.2f}% "
        f"(up-lift {constrained.uplift:+.2f})"
    )

    benchmark.extra_info["constrained_best_kpi"] = constrained.best_kpi
    benchmark.extra_info["constrained_uplift"] = constrained.uplift
    benchmark.extra_info["free_best_kpi"] = free.best_kpi

    # shape checks: the constraint is honoured, the optimised KPI far exceeds
    # the baseline, and the model confidence is reported with the answer
    assert 40.0 <= constrained.driver_changes[DRIVER] <= 80.0
    assert constrained.uplift > 10.0
    assert constrained.best_kpi > 55.0
    assert 0.0 <= constrained.model_confidence <= 1.0
    # free optimisation can only do at least as well as the constrained one
    assert free.best_kpi >= constrained.best_kpi - 3.0
