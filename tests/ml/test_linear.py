"""Unit tests for linear and ridge regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import LinearRegression, NotFittedError, Ridge


class TestLinearRegression:
    def test_recovers_exact_coefficients(self, linear_data):
        X, y = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, [2.0, -1.5], atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-8)

    def test_predictions_match_targets_noiseless(self, linear_data):
        X, y = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-8)

    def test_score_is_r2(self, linear_data):
        X, y = linear_data
        assert LinearRegression().fit(X, y).score(X, y) == pytest.approx(1.0)

    def test_without_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_feature_count_mismatch(self, linear_data):
        X, y = linear_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 5)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.array([[np.nan]]), np.array([1.0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((3, 1)), np.zeros(4))

    def test_feature_importances_normalised(self, linear_data):
        X, y = linear_data
        importances = LinearRegression().fit(X, y).feature_importances_
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > importances[1]  # |2.0| > |-1.5|

    def test_1d_input_is_reshaped(self):
        X = np.array([1.0, 2.0, 3.0, 4.0])
        y = 2 * X
        model = LinearRegression().fit(X, y)
        assert model.coef_[0] == pytest.approx(2.0)


class TestRidge:
    def test_alpha_zero_matches_ols(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-6)
        assert ridge.intercept_ == pytest.approx(ols.intercept_, abs=1e-6)

    def test_regularisation_shrinks_coefficients(self, linear_data):
        X, y = linear_data
        small = Ridge(alpha=0.1).fit(X, y)
        large = Ridge(alpha=1000.0).fit(X, y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)

    def test_handles_collinear_features(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        X = np.column_stack([x, x])  # perfectly collinear
        y = 3 * x
        model = Ridge(alpha=1.0).fit(X, y)
        predictions = model.predict(X)
        assert np.corrcoef(predictions, y)[0, 1] > 0.99

    def test_get_set_params(self):
        model = Ridge(alpha=2.0)
        assert model.get_params()["alpha"] == 2.0
        model.set_params(alpha=5.0)
        assert model.alpha == 5.0
        with pytest.raises(ValueError):
            model.set_params(bogus=1)
