"""Quickstart: the four what-if functionalities in ~40 lines.

Loads the deal-closing use case (paper Figure 2) and runs, in order:
driver importance analysis, sensitivity analysis, goal inversion, and
constrained analysis — the workflow a business user walks through in the UI.

Run with::

    python examples/quickstart.py
"""

from repro import WhatIfSession


def main() -> None:
    # View (A)/(B): pick the use case; the KPI and driver list come preconfigured.
    session = WhatIfSession.from_use_case("deal_closing", dataset_kwargs={"n_prospects": 800})
    print(f"dataset: {session.frame.shape[0]} prospects, KPI = {session.kpi.name!r}")

    # Functionality 1 — driver importance analysis (view E).
    importance = session.driver_importance(verify=False)
    print("\nDriver importance (most to least):")
    for entry in importance.drivers:
        print(f"  {entry.rank:>2}. {entry.driver:<24} {entry.importance:+.2f}")
    print(f"model confidence: {importance.model_confidence:.2f}")

    # Functionality 2 — sensitivity analysis (views F/G/H): +40% marketing emails opened.
    top_driver = importance.top(1)[0]
    sensitivity = session.sensitivity({top_driver: 40.0}, track_as=f"{top_driver} +40%")
    print(
        f"\nSensitivity: {top_driver} +40% -> KPI "
        f"{sensitivity.original_kpi:.2f}{sensitivity.kpi_unit} => "
        f"{sensitivity.perturbed_kpi:.2f}{sensitivity.kpi_unit} "
        f"(uplift {sensitivity.uplift:+.2f})"
    )

    # Functionality 3 — goal inversion (view I): maximise the deal-closing rate.
    inversion = session.goal_inversion("maximize", n_calls=25, track_as="free maximum")
    print(f"\nGoal inversion: best KPI {inversion.best_kpi:.2f} (uplift {inversion.uplift:+.2f})")

    # Functionality 4 — constrained analysis: the top driver may only rise 40-80%.
    constrained = session.constrained_analysis(
        {top_driver: (40.0, 80.0)}, n_calls=25, track_as="constrained maximum"
    )
    print(
        f"Constrained analysis ({top_driver} +40%..+80%): best KPI "
        f"{constrained.best_kpi:.2f} (uplift {constrained.uplift:+.2f})"
    )

    # Options tracking: every analysis above was recorded as a scenario.
    print("\nTracked scenarios:")
    for row in session.scenarios.compare():
        print(f"  #{row['scenario_id']} {row['name']:<24} KPI {row['kpi_value']:.2f}")


if __name__ == "__main__":
    main()
