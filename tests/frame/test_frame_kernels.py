"""Equivalence and regression tests for the columnar frame kernels.

The columnar group-by/join/from_records paths must return the same results as
the ``_*_rowwise`` reference implementations they replaced (the same contract
the tree kernels honour against the recursive walk), and the three row-path
bugs the vectorization exposed — unstable descending sort, dtype-erasing
empty joins, NaN group-key fragmentation — each get a regression lock.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import (
    COLUMN_REDUCERS,
    Column,
    DataFrame,
    TypeMismatchError,
    group_index,
    join_frames,
)
from repro.frame.join import _join_rowwise


def _is_missing(value) -> bool:
    return value is None or (isinstance(value, float) and math.isnan(value))


def assert_frames_match(actual: DataFrame, expected: DataFrame) -> None:
    """Value-level frame equality: missing is missing, floats to tolerance.

    Dtype-tolerant on purpose: the row-wise paths re-infer dtypes from row
    dicts (e.g. an all-``None`` string column comes back as float NaNs) while
    the columnar paths preserve the source dtype.
    """
    assert actual.columns == expected.columns
    assert actual.n_rows == expected.n_rows
    for name in expected.columns:
        got = actual.column(name).tolist()
        want = expected.column(name).tolist()
        for row, (a, b) in enumerate(zip(got, want)):
            if _is_missing(a) or _is_missing(b):
                assert _is_missing(a) and _is_missing(b), (name, row, a, b)
            elif isinstance(a, float) or isinstance(b, float):
                assert a == pytest.approx(b, rel=1e-9, abs=1e-12), (name, row)
            else:
                assert a == b, (name, row, a, b)


# --------------------------------------------------------------------------- #
# randomized frames: string keys with None, int/bool keys, float values with
# NaN, plenty of ties
# --------------------------------------------------------------------------- #
float_values = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.just(float("nan")),
)


@st.composite
def keyed_frames(draw):
    n_rows = draw(st.integers(min_value=1, max_value=30))

    def rows(strategy):
        return draw(st.lists(strategy, min_size=n_rows, max_size=n_rows))

    return DataFrame(
        {
            "key_s": Column(
                "key_s",
                rows(st.sampled_from(["east", "west", "north", None])),
                dtype="string",
            ),
            "key_i": rows(st.integers(min_value=0, max_value=2)),
            "flag": rows(st.booleans()),
            "value": Column("value", rows(float_values), dtype="float"),
            "clicks": rows(st.integers(min_value=-5, max_value=5)),
        }
    )


@given(keyed_frames(), st.sampled_from(sorted(COLUMN_REDUCERS)))
@settings(max_examples=60, deadline=None)
def test_groupby_agg_matches_rowwise(frame, how):
    grouped = frame.groupby(["key_s", "key_i"])
    aggregations = {"value": how, "clicks": how}
    if how == "nunique":
        aggregations["key_s"] = how  # string nunique crashed the old reducer table
    assert_frames_match(grouped.agg(aggregations), grouped._agg_rowwise(aggregations))


@given(keyed_frames(), st.sampled_from([["key_s"], ["key_i", "flag"], ["key_s", "key_i"]]))
@settings(max_examples=60, deadline=None)
def test_groupby_structure_matches_rowwise(frame, keys):
    grouped = frame.groupby(keys)
    rowwise = grouped._build_groups_rowwise()
    assert grouped.groups() == rowwise
    assert list(grouped.groups()) == list(rowwise)  # first-appearance order
    assert grouped.n_groups == len(rowwise)
    assert_frames_match(grouped.size(), grouped._size_rowwise())


@given(keyed_frames(), keyed_frames(), st.sampled_from(["inner", "left"]))
@settings(max_examples=60, deadline=None)
def test_join_matches_rowwise(left, right, how):
    right = right.select(["key_s", "key_i", "value", "clicks"])
    for keys in (["key_s"], ["key_s", "key_i"]):
        assert_frames_match(
            join_frames(left, right, keys, how=how),
            _join_rowwise(left, right, keys, how=how),
        )


@pytest.mark.parametrize("how", ["inner", "left"])
@pytest.mark.parametrize("flip", [False, True])
def test_join_on_mixed_dtype_keys_matches_rowwise(how, flip):
    # a float key can never equal a string key, so such joins match nothing —
    # and must not crash combining the one-sided NaN masks
    numeric = DataFrame(
        {"k": Column("k", [1.0, float("nan"), 2.0], dtype="float"), "a": [10.0, 20.0, 30.0]}
    )
    textual = DataFrame(
        {"k": Column("k", ["1", "2", None], dtype="string"), "b": [1, 2, 3]}
    )
    left, right = (textual, numeric) if flip else (numeric, textual)
    assert_frames_match(
        join_frames(left, right, ["k"], how=how),
        _join_rowwise(left, right, ["k"], how=how),
    )


@st.composite
def record_lists(draw):
    n_rows = draw(st.integers(min_value=0, max_value=20))
    fields = {
        "a": float_values,
        "b": st.integers(min_value=-10, max_value=10),
        "c": st.sampled_from(["x", "y", None]),
        "d": st.booleans(),
    }
    records = []
    for _ in range(n_rows):
        present = draw(
            st.lists(st.sampled_from(sorted(fields)), min_size=0, max_size=4, unique=True)
        )
        records.append({name: draw(fields[name]) for name in present})
    return records


@given(record_lists())
@settings(max_examples=60, deadline=None)
def test_from_records_matches_rowwise(records):
    assert DataFrame.from_records(records) == DataFrame._from_records_rowwise(records)


# --------------------------------------------------------------------------- #
# regression: descending sort is stable with NaNs last
# --------------------------------------------------------------------------- #
class TestDescendingSort:
    @pytest.fixture()
    def tied_frame(self):
        return DataFrame(
            {
                "row": [0, 1, 2, 3, 4, 5],
                "v": Column(
                    "v", [2.0, float("nan"), 1.0, 2.0, float("nan"), 3.0], dtype="float"
                ),
                "s": Column("s", ["b", "a", "b", "c", "a", "b"], dtype="string"),
            }
        )

    def test_numeric_descending_nans_last_ties_stable(self, tied_frame):
        ordered = tied_frame.sort_values("v", ascending=False)
        values = ordered.column("v").tolist()
        assert values[:4] == [3.0, 2.0, 2.0, 1.0]
        assert all(math.isnan(v) for v in values[4:])
        # ties (the two 2.0s) and NaNs keep original row order
        assert ordered.column("row").tolist() == [5, 0, 3, 2, 1, 4]

    def test_numeric_ascending_unchanged(self, tied_frame):
        ordered = tied_frame.sort_values("v")
        assert ordered.column("v").tolist()[:4] == [1.0, 2.0, 2.0, 3.0]
        assert ordered.column("row").tolist() == [2, 0, 3, 5, 1, 4]

    def test_string_descending_is_stable(self, tied_frame):
        ordered = tied_frame.sort_values("s", ascending=False)
        assert ordered.column("s").tolist() == ["c", "b", "b", "b", "a", "a"]
        assert ordered.column("row").tolist() == [3, 0, 2, 5, 1, 4]

    @given(
        st.lists(
            st.one_of(st.sampled_from([0.0, 1.0, 2.0]), st.just(float("nan"))),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_descending_is_reverse_sorted_with_nans_last(self, values):
        frame = DataFrame(
            {"row": list(range(len(values))), "v": Column("v", values, dtype="float")}
        )
        ordered = frame.sort_values("v", ascending=False).column("v").to_numeric()
        finite = ordered[~np.isnan(ordered)]
        assert np.all(np.diff(finite) <= 0)
        assert not np.isnan(ordered[: finite.size]).any()


# --------------------------------------------------------------------------- #
# regression: empty join results preserve source dtypes
# --------------------------------------------------------------------------- #
class TestEmptyJoinDtypes:
    @pytest.fixture()
    def disjoint(self):
        left = DataFrame(
            {
                "account": Column("account", ["a", "b"], dtype="string"),
                "spend": [1.0, 2.0],
                "clicks": [1, 2],
            }
        )
        right = DataFrame(
            {
                "account": Column("account", ["z"], dtype="string"),
                "owner": Column("owner", ["zoe"], dtype="string"),
                "won": Column("won", [True], dtype="bool"),
            }
        )
        return left, right

    def test_columnar_empty_inner_join_keeps_dtypes(self, disjoint):
        left, right = disjoint
        joined = join_frames(left, right, ["account"], how="inner")
        assert joined.n_rows == 0
        assert joined.dtypes == {
            "account": "string",
            "spend": "float",
            "clicks": "int",
            "owner": "string",
            "won": "bool",
        }

    def test_rowwise_empty_inner_join_keeps_dtypes(self, disjoint):
        left, right = disjoint
        joined = _join_rowwise(left, right, ["account"], how="inner")
        assert joined.dtypes["account"] == "string"
        assert joined.dtypes["won"] == "bool"

    def test_empty_frame_constructor_accepts_dtypes(self):
        frame = DataFrame.empty(["a", "b"], dtypes={"a": "string"})
        assert frame.dtypes == {"a": "string", "b": "float"}


# --------------------------------------------------------------------------- #
# regression: NaN group keys collapse into a single group
# --------------------------------------------------------------------------- #
class TestNaNGroupKeys:
    @pytest.fixture()
    def nan_keyed(self):
        return DataFrame(
            {
                "bucket": Column(
                    "bucket",
                    [1.0, float("nan"), 2.0, float("nan"), float("nan"), 1.0],
                    dtype="float",
                ),
                "value": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            }
        )

    def test_nan_keys_form_one_group(self, nan_keyed):
        grouped = nan_keyed.groupby("bucket")
        assert grouped.n_groups == 3
        sizes = dict(zip(grouped.group_keys(), grouped.size().column("size").tolist()))
        nan_sizes = [size for key, size in sizes.items() if math.isnan(key[0])]
        assert nan_sizes == [3]

    def test_rowwise_reference_still_fragments(self, nan_keyed):
        # the reference keeps the historical NaN != NaN behaviour; this pins
        # the *difference* so nobody "fixes" the reference silently
        assert len(nan_keyed.groupby("bucket")._build_groups_rowwise()) == 5

    def test_nan_group_aggregates_all_nan_rows(self, nan_keyed):
        result = nan_keyed.groupby("bucket").agg({"value": "sum"})
        by_key = dict(
            zip(result.column("bucket").tolist(), result.column("value_sum").tolist())
        )
        nan_sums = [v for k, v in by_key.items() if math.isnan(k)]
        assert nan_sums == [110.0]

    def test_multi_key_nan_collapse(self):
        frame = DataFrame(
            {
                "a": Column("a", [float("nan"), float("nan"), 1.0], dtype="float"),
                "b": Column("b", ["x", "x", "x"], dtype="string"),
            }
        )
        assert frame.groupby(["a", "b"]).n_groups == 2


# --------------------------------------------------------------------------- #
# the shared reducer table
# --------------------------------------------------------------------------- #
class TestSharedReducers:
    def test_groupby_and_aggregate_accept_the_same_names(self, tiny_frame):
        for how in COLUMN_REDUCERS:
            if how in ("count", "nunique"):
                tiny_frame.groupby("region").agg({"region": how})
            tiny_frame.groupby("region").agg({"spend": how})
            tiny_frame.aggregate({"spend": how})

    def test_unknown_reducer_raises_everywhere(self, tiny_frame):
        with pytest.raises(TypeMismatchError):
            tiny_frame.groupby("region").agg({"spend": "mode"})
        with pytest.raises(TypeMismatchError):
            tiny_frame.groupby("region")._agg_rowwise({"spend": "mode"})
        with pytest.raises(TypeMismatchError):
            tiny_frame.aggregate({"spend": "mode"})

    def test_string_nunique_no_longer_crashes(self, tiny_frame):
        # the dead _REDUCERS table ran np.isnan over object arrays
        result = tiny_frame.groupby("converted").agg({"region": "nunique"})
        assert result.column("region_nunique").tolist() == [2.0, 2.0]

    def test_numeric_reducer_on_string_column_raises(self, tiny_frame):
        with pytest.raises(TypeMismatchError):
            tiny_frame.groupby("converted").agg({"region": "sum"})

    def test_std_of_singleton_group_is_zero(self):
        frame = DataFrame({"k": [0, 0, 1], "v": [1.0, 3.0, 5.0]})
        result = frame.groupby("k").agg({"v": "std"})
        by_key = dict(zip(frame.column("k").unique(), result.column("v_std").tolist()))
        assert by_key[1] == 0.0
        assert by_key[0] == pytest.approx(np.std([1.0, 3.0], ddof=1))


# --------------------------------------------------------------------------- #
# kernel internals
# --------------------------------------------------------------------------- #
class TestGroupIndex:
    def test_first_appearance_order(self):
        column = Column("k", ["b", "a", "b", "c", "a"], dtype="string")
        index = group_index([column])
        assert index.n_groups == 3
        assert index.first_rows.tolist() == [0, 1, 3]
        assert index.codes.tolist() == [0, 1, 0, 2, 1]
        assert index.counts.tolist() == [2, 2, 1]

    def test_segments_partition_the_rows(self):
        column = Column("k", [1, 2, 1, 1, 3, 2], dtype="int")
        index = group_index([column])
        seen = np.concatenate([index.segment(g) for g in range(index.n_groups)])
        assert sorted(seen.tolist()) == list(range(6))

    def test_indices_views_back_the_groupby(self, tiny_frame):
        grouped = tiny_frame.groupby("region")
        indices = grouped.indices()
        assert {key: idx.tolist() for key, idx in indices.items()} == grouped.groups()

    def test_zero_keys_is_one_group_of_all_rows(self, tiny_frame):
        grouped = tiny_frame.groupby([])
        assert grouped.groups() == grouped._build_groups_rowwise()
        assert grouped.groups() == {(): list(range(tiny_frame.n_rows))}

    def test_zero_keys_on_empty_frame_has_no_groups(self):
        frame = DataFrame({"a": []})
        grouped = frame.groupby([])
        assert grouped.n_groups == 0
        assert grouped.groups() == grouped._build_groups_rowwise() == {}
