"""SSE client helper for the job-event streaming endpoint.

:class:`StreamClient` is the Python-side counterpart of ``GET
/api/v1/sessions/{sid}/jobs/{jid}/events``: it opens the stream over a plain
:class:`http.client.HTTPConnection`, parses the ``id:`` / ``event:`` /
``data:`` framing into :class:`ServerEvent` records, and tracks the last
delivered sequence id so a dropped connection resumes exactly where it left
off (``Last-Event-ID``) — the same contract a browser ``EventSource`` gives
the paper's interactive frontend.  Stdlib only, like the server it talks to.

Typical use (also what ``repro jobs --follow`` runs)::

    client = StreamClient("127.0.0.1", 8765)
    for event in client.stream_job(session_id, job_id):
        print(event.type, event.data)
    # returns after the terminal done/failed/cancelled event
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from .registry import DEFAULT_SESSION_ID

__all__ = ["ServerEvent", "StreamClient", "StreamError"]


class StreamError(RuntimeError):
    """Raised when the server refuses a stream (non-200 status)."""

    def __init__(self, status: int, body: dict[str, Any] | str):
        self.status = status
        self.body = body
        super().__init__(f"stream request failed with HTTP {status}: {body}")


@dataclass(frozen=True)
class ServerEvent:
    """One parsed SSE frame.

    ``event_id``/``type`` come from the frame fields; ``data`` is the decoded
    JSON payload — for job streams, the full ``JobEvent.to_dict()`` record
    (whose ``data`` key holds the event-specific payload).
    """

    event_id: int
    type: str
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def payload(self) -> dict[str, Any]:
        """The event-specific payload nested inside the bus record."""
        inner = self.data.get("data")
        return inner if isinstance(inner, dict) else {}


def parse_sse(lines: Iterator[str]) -> Iterator[ServerEvent]:
    """Parse SSE framing (``id:``/``event:``/``data:``, blank-line flush).

    Comment lines (``:`` prefix — keepalives) are ignored.  ``data`` lines
    accumulate per the SSE spec and are JSON-decoded at flush; frames whose
    data is not a JSON object yield an empty dict.
    """
    event_id = 0
    event_type = "message"
    data_lines: list[str] = []
    for raw in lines:
        line = raw.rstrip("\r\n")
        if not line:
            if data_lines or event_type != "message":
                joined = "\n".join(data_lines)
                try:
                    decoded = json.loads(joined) if joined else {}
                except json.JSONDecodeError:
                    decoded = {}
                yield ServerEvent(
                    event_id=event_id,
                    type=event_type,
                    data=decoded if isinstance(decoded, dict) else {},
                )
            event_id, event_type, data_lines = 0, "message", []
            continue
        if line.startswith(":"):
            continue
        name, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if name == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = 0
        elif name == "event":
            event_type = value
        elif name == "data":
            data_lines.append(value)


class StreamClient:
    """Streams a job's events from a running :func:`~repro.server.app.serve_http`.

    Parameters
    ----------
    host, port:
        The HTTP server's address.
    timeout:
        Socket timeout while waiting for the next byte of the stream; the
        server's keepalive comments arrive well inside any sane value.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Sequence id of the last event delivered by :meth:`stream_job`
        #: (what a reconnect resumes from).
        self.last_event_id = 0

    # ------------------------------------------------------------------ #
    def events_path(self, session_id: str, job_id: str) -> str:
        sid = session_id or DEFAULT_SESSION_ID
        return f"/api/v1/sessions/{sid}/jobs/{job_id}/events"

    def _open(
        self, session_id: str, job_id: str, after_seq: int, cancel_on_disconnect: bool
    ) -> tuple[http.client.HTTPConnection, http.client.HTTPResponse]:
        path = self.events_path(session_id, job_id)
        if cancel_on_disconnect:
            path += "?cancel_on_disconnect=1"
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        headers = {"Accept": "text/event-stream"}
        if after_seq:
            headers["Last-Event-ID"] = str(after_seq)
        connection.request("GET", path, headers=headers)
        response = connection.getresponse()
        if response.status != 200:
            body_text = response.read().decode("utf-8", errors="replace")
            connection.close()
            try:
                body: dict[str, Any] | str = json.loads(body_text)
            except json.JSONDecodeError:
                body = body_text
            raise StreamError(response.status, body)
        return connection, response

    def stream_job(
        self,
        session_id: str,
        job_id: str,
        *,
        after_seq: int | None = None,
        cancel_on_disconnect: bool = False,
        max_events: int | None = None,
    ) -> Iterator[ServerEvent]:
        """Yield a job's events, ending after the terminal one.

        ``after_seq`` overrides the resume point (default: continue from
        :attr:`last_event_id`, i.e. 0 on a fresh client).  ``max_events``
        stops early without closing politely — handy for tests that simulate
        a dropped connection.
        """
        # imported lazily: repro.engine pulls in the handler tables
        from ..engine import TERMINAL_EVENTS

        start = self.last_event_id if after_seq is None else after_seq
        connection, response = self._open(session_id, job_id, start, cancel_on_disconnect)
        delivered = 0
        try:
            lines = (raw.decode("utf-8", errors="replace") for raw in response)
            for event in parse_sse(lines):
                if event.event_id:
                    self.last_event_id = event.event_id
                yield event
                delivered += 1
                if event.type in TERMINAL_EVENTS:
                    return
                if max_events is not None and delivered >= max_events:
                    return
        finally:
            connection.close()
