"""Linear regression models.

The paper trains "linear regression models when the KPI objective is a
continuous variable (e.g., sales)" and uses the fitted coefficients as the
driver-importance signal.  We provide ordinary least squares and a ridge
variant (the latter keeps coefficient-based importances stable when drivers
are collinear, which marketing-spend channels usually are).
"""

from __future__ import annotations

import numpy as np

from .base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_X_y,
)

__all__ = ["LinearRegression", "Ridge"]


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least-squares linear regression.

    Parameters
    ----------
    fit_intercept:
        Whether to learn an intercept term (default True).

    Attributes
    ----------
    coef_:
        Learned coefficients, shape ``(n_features,)``.
    intercept_:
        Learned intercept (0.0 when ``fit_intercept=False``).
    feature_importances_:
        Absolute coefficients normalised to sum to one; provided so linear
        models expose the same importance surface as tree ensembles.
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> "LinearRegression":
        """Fit the model by solving the least-squares problem."""
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        if self.fit_intercept:
            design = np.column_stack([np.ones(X.shape[0]), X])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, X) -> np.ndarray:
        """Predict target values for ``X``."""
        check_is_fitted(self, "coef_")
        X = check_array(X, allow_1d=True)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was trained with {self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalised absolute coefficients (sums to 1 unless all are zero)."""
        check_is_fitted(self, "coef_")
        magnitude = np.abs(self.coef_)
        total = magnitude.sum()
        if total == 0:
            return np.zeros_like(magnitude)
        return magnitude / total


class Ridge(LinearRegression):
    """L2-regularised linear regression.

    Parameters
    ----------
    alpha:
        Regularisation strength; ``alpha=0`` recovers OLS.
    fit_intercept:
        Whether to learn an intercept (the intercept itself is never
        penalised).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        super().__init__(fit_intercept=fit_intercept)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def fit(self, X, y) -> "Ridge":
        """Fit by solving the regularised normal equations."""
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            x_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            x_centered = X
            y_centered = y
        gram = x_centered.T @ x_centered + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, x_centered.T @ y_centered)
        self.intercept_ = y_mean - float(x_mean @ self.coef_) if self.fit_intercept else 0.0
        return self
