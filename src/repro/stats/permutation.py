"""Permutation feature importance.

A model-agnostic importance measure: how much does the model's score drop when
a single driver's column is shuffled?  Used as an additional cross-check in
the driver-importance verification report and in the robustness analysis.
"""

from __future__ import annotations

import numpy as np

__all__ = ["permutation_importance"]


def permutation_importance(
    model,
    X,
    y,
    *,
    n_repeats: int = 5,
    scoring=None,
    random_state: int | None = None,
) -> dict[str, np.ndarray]:
    """Permutation importance of every feature.

    Parameters
    ----------
    model:
        A fitted estimator with a ``score`` method (or supply ``scoring``).
    X, y:
        Evaluation data.
    n_repeats:
        Number of shuffles per feature.
    scoring:
        Optional callable ``scoring(model, X, y) -> float``; defaults to
        ``model.score``.
    random_state:
        Seed for reproducibility.

    Returns
    -------
    dict
        ``{"importances_mean": ..., "importances_std": ..., "baseline_score": ...}``
        where the arrays have one entry per feature.  Positive values mean the
        feature mattered (shuffling it hurt the score).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if n_repeats < 1:
        raise ValueError("n_repeats must be positive")
    score = scoring if scoring is not None else (lambda m, X_, y_: m.score(X_, y_))
    rng = np.random.default_rng(random_state)

    baseline = score(model, X, y)
    n_features = X.shape[1]
    drops = np.zeros((n_features, n_repeats))
    for feature in range(n_features):
        for repeat in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, feature] = rng.permutation(shuffled[:, feature])
            drops[feature, repeat] = baseline - score(model, shuffled, y)
    return {
        "importances_mean": drops.mean(axis=1),
        "importances_std": drops.std(axis=1),
        "baseline_score": float(baseline),
    }
