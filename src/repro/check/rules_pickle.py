"""Pickle-safety rule (PKL family).

The process executor ships ``(kind, payload)`` work units plus one
:class:`~repro.core.model_manager.ModelManager` per fingerprint across a
``spawn`` boundary (see ``engine/process.py``), and the event bus forwards
:class:`~repro.engine.events.JobEvent` payloads between threads and SSE
streams.  Anything reachable from those objects must survive pickling — a
lock, thread, queue, socket, or lambda smuggled into the attribute graph
only explodes at runtime, on the first process-executor job.

**PKL001** walks the *static* attribute graph of the boundary-crossing root
classes: every ``self.X = ...`` assignment, ``__init__`` parameter
annotation, and dataclass field is inspected; constructor calls and
annotations naming project classes recurse into them (including classes
instantiated by helper-method return values, e.g. ``self._model =
self._build_model()``).  Unpicklable constructors (``threading.Lock()``,
``queue.Queue()``, ...), unpicklable annotations, and ``lambda`` values are
flagged at their assignment site.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .astutil import ModuleInfo
from .engine import Project, RawFinding, Rule

__all__ = ["RULES"]

#: Classes whose instances cross a process/thread serialisation boundary.
_ROOT_CLASSES = ("ModelManager", "JobEvent")

#: Type names whose instances cannot (or must not) cross the boundary.
_FORBIDDEN_NAMES = {
    "Lock",
    "RLock",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Thread",
    "Timer",
    "Queue",
    "SimpleQueue",
    "LifoQueue",
    "PriorityQueue",
    "socket",
    "Pipe",
    "Process",
    "local",
}

#: Module prefixes that are wholesale unpicklable territory.
_FORBIDDEN_PREFIXES = ("threading.", "multiprocessing.", "queue.", "socket.", "_thread.")


def _forbidden_reason(text: str) -> str | None:
    """Why the dotted name ``text`` must not appear in a shipped graph."""
    if text.startswith(_FORBIDDEN_PREFIXES) or text in (
        "threading",
        "queue",
        "socket",
        "multiprocessing",
    ):
        return f"'{text}' objects cannot cross the process boundary"
    if text.split(".")[-1] in _FORBIDDEN_NAMES:
        return f"'{text}' is a lock/thread/queue/socket type"
    return None


def _class_index(project: Project) -> dict[str, tuple[ast.ClassDef, ModuleInfo]]:
    index: dict[str, tuple[ast.ClassDef, ModuleInfo]] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name not in index:
                index[node.name] = (node, module)
    return index


def _annotation_names(node: ast.expr | None) -> Iterator[str]:
    """Plain type names referenced by an annotation (unions, subscripts)."""
    if node is None:
        return
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield ast.unparse(sub)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # string annotations ("ModelManager") name classes too
            yield sub.value.strip("'\"")


def _constructor_names(value: ast.expr) -> Iterator[tuple[str, ast.expr]]:
    """Every dotted callee invoked anywhere inside ``value``.

    Recursing through the whole expression catches constructors nested in
    container literals and call arguments, e.g.
    ``Pipeline([("scale", StandardScaler())])``.
    """
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call) and isinstance(sub.func, (ast.Name, ast.Attribute)):
            yield ast.unparse(sub.func), sub


def _scan_class(
    cls: ast.ClassDef, module: ModuleInfo, index: dict[str, tuple[ast.ClassDef, ModuleInfo]]
) -> tuple[list[RawFinding], set[str]]:
    """Findings inside one class plus the project classes its graph reaches."""
    findings: list[RawFinding] = []
    reached: set[str] = set()
    followed_factories: set[str] = set()

    def inspect_value(value: ast.expr, attr: str) -> None:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Lambda):
                findings.append(
                    (
                        module.relpath,
                        sub.lineno,
                        f"lambda stored on '{cls.name}.{attr}': lambdas cannot be "
                        "pickled across the process boundary",
                    )
                )
        for callee, call in _constructor_names(value):
            reason = _forbidden_reason(callee)
            if reason is not None:
                findings.append(
                    (
                        module.relpath,
                        call.lineno,
                        f"'{cls.name}.{attr}' holds {callee}(...): {reason}",
                    )
                )
            elif callee in index:
                reached.add(callee)
            elif (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
                and call.func.attr not in followed_factories
            ):
                # factory-method indirection: follow the method's returns
                followed_factories.add(call.func.attr)
                for method in cls.body:
                    if (
                        isinstance(method, ast.FunctionDef)
                        and method.name == call.func.attr
                    ):
                        for ret in ast.walk(method):
                            if isinstance(ret, ast.Return) and ret.value is not None:
                                inspect_value(ret.value, attr)

    def inspect_annotation(annotation: ast.expr | None, attr: str, lineno: int) -> None:
        for name in _annotation_names(annotation):
            reason = _forbidden_reason(name)
            if reason is not None:
                findings.append(
                    (
                        module.relpath,
                        lineno,
                        f"'{cls.name}.{attr}' is annotated {name}: {reason}",
                    )
                )
            elif name in index:
                reached.add(name)

    # dataclass-style class-level fields
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            inspect_annotation(stmt.annotation, stmt.target.id, stmt.lineno)
            if stmt.value is not None:
                inspect_value(stmt.value, stmt.target.id)

    # parameter annotations: whatever __init__ accepts it may store
    params: dict[str, ast.expr | None] = {}
    for method in cls.body:
        if isinstance(method, ast.FunctionDef) and method.name == "__init__":
            args = method.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                params[arg.arg] = arg.annotation

    # every self.X = ... assignment anywhere in the class
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if isinstance(node, ast.AnnAssign):
                inspect_annotation(node.annotation, target.attr, node.lineno)
            if value is not None:
                inspect_value(value, target.attr)
                if isinstance(value, ast.Name) and value.id in params:
                    inspect_annotation(params[value.id], target.attr, node.lineno)

    return findings, reached


def check_pkl001(project: Project) -> Iterable[RawFinding]:
    """Transitive attribute graph of boundary-crossing classes is picklable."""
    index = _class_index(project)
    queue = [name for name in _ROOT_CLASSES if name in index]
    visited: set[str] = set()
    while queue:
        name = queue.pop()
        if name in visited:
            continue
        visited.add(name)
        cls, module = index[name]
        findings, reached = _scan_class(cls, module, index)
        yield from findings
        queue.extend(sorted(reached - visited))


RULES = [
    Rule(
        "PKL001",
        "error",
        "unpicklable object reachable from a process-boundary class",
        check_pkl001,
    )
]
