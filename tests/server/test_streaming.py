"""End-to-end SSE streaming tests over a real socket.

The acceptance bar for the streaming subsystem, asserted here:

* a subscriber attached to a *running* sweep job receives at least one
  incremental frontier chunk before the job finishes (proved with a barrier
  that holds the job mid-run until the chunk has been read live);
* after a dropped connection, reconnecting with ``Last-Event-ID`` resumes
  with no missing and no duplicated events;
* ``?cancel_on_disconnect=1`` transitions the job to ``cancelled`` when the
  client vanishes — under both the thread and the process executor;
* the ``done`` event's embedded result is bitwise-identical to the polled
  ``job_result`` payload.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.scenarios.planner as planner
import repro.server.app as app_module
from repro.core.model_manager import ModelManager
from repro.server import DEFAULT_SESSION_ID, serve_http
from repro.server.stream import StreamClient, StreamError

SPACE = {
    "axes": [
        {"driver": "Call", "start": -40, "stop": 40, "step": 20},
        {"driver": "Renewal", "amounts": [0, 20, 40]},
    ]
}

#: Large enough that a process-executor sweep runs for many seconds.
BIG_SPACE = {
    "axes": [
        {"driver": "Call", "start": -40, "stop": 40, "step": 2},
        {"driver": "Renewal", "amounts": [0, 10, 20, 30, 40]},
    ]
}


def start_http(**kwargs):
    httpd = serve_http(port=0, **kwargs)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd


def stop_http(httpd):
    httpd.shutdown()
    httpd.backend.close()
    httpd.server_close()


def post(httpd, payload: dict, timeout: float = 120.0) -> dict:
    host, port = httpd.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}/",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def submit_sweep(httpd, space=SPACE) -> str:
    envelope = post(httpd, {"action": "sweep", "params": {"space": space}})
    assert envelope["ok"], envelope["error"]
    return envelope["data"]["job"]["job_id"]


def job_state(httpd, job_id: str) -> str:
    envelope = post(httpd, {"action": "job_status", "params": {"job_id": job_id}})
    assert envelope["ok"], envelope["error"]
    return envelope["data"]["job"]["state"]


def wait_terminal(httpd, job_id: str, timeout: float = 60.0) -> str:
    deadline = time.time() + timeout
    while time.time() < deadline:
        state = job_state(httpd, job_id)
        if state in ("done", "failed", "cancelled"):
            return state
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} still {state!r} after {timeout}s")


def make_client(httpd, **kwargs) -> StreamClient:
    host, port = httpd.server_address[:2]
    return StreamClient(host, port, **kwargs)


@pytest.fixture(scope="module")
def thread_httpd():
    httpd = start_http(workers=2)
    envelope = post(
        httpd,
        {
            "action": "load_use_case",
            "params": {"use_case": "deal_closing", "dataset_kwargs": {"n_prospects": 80}},
        },
    )
    assert envelope["ok"], envelope["error"]
    yield httpd
    stop_http(httpd)


@pytest.fixture
def chunked(monkeypatch):
    """Force the sweep onto the chunked fallback (2 scenarios per chunk)."""
    monkeypatch.setattr(planner, "grid_sweep_kpis", lambda *a, **k: None)
    monkeypatch.setattr(planner, "SWEEP_CHUNK_SCENARIOS", 2)


class Gate:
    """Wraps ``predict_kpi_batch``: chunk 1 passes, later chunks block."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0
        self.original = ModelManager.predict_kpi_batch

    def handle(self, manager, matrices):
        self.calls += 1
        if self.calls > 1:
            assert self.release.wait(30), "gate was never released"
        return self.original(manager, matrices)


@pytest.fixture
def gate(monkeypatch, chunked):
    instance = Gate()
    monkeypatch.setattr(
        ModelManager, "predict_kpi_batch", lambda m, x: instance.handle(m, x)
    )
    yield instance
    instance.release.set()


#: A sweep space big enough that, at one slowed chunk per scenario, many
#: seconds of work remain after the first chunk — disconnect detection
#: (a couple of keepalive intervals) always lands well before completion.
SLOW_SPACE = {
    "axes": [
        {"driver": "Call", "start": -40, "stop": 40, "step": 5},
        {"driver": "Renewal", "amounts": [0, 20, 40]},
    ]
}


@pytest.fixture
def slow_chunks(monkeypatch):
    """One scenario per chunk, each slowed down: a sweep that takes ~15s."""
    monkeypatch.setattr(planner, "grid_sweep_kpis", lambda *a, **k: None)
    monkeypatch.setattr(planner, "SWEEP_CHUNK_SCENARIOS", 1)
    original = ModelManager.predict_kpi_batch

    def slowed(manager, matrices):
        time.sleep(0.3)
        return original(manager, matrices)

    monkeypatch.setattr(ModelManager, "predict_kpi_batch", slowed)


class TestLiveStreaming:
    def test_chunk_arrives_while_job_is_still_running(self, thread_httpd, gate):
        job_id = submit_sweep(thread_httpd)
        client = make_client(thread_httpd)
        stream = client.stream_job(DEFAULT_SESSION_ID, job_id)
        events = []
        first_chunk = None
        for event in stream:
            events.append(event)
            if event.type == "sweep_chunk":
                first_chunk = event
                break
        # the gate still holds chunk 2: the chunk was delivered mid-run
        assert first_chunk is not None
        assert first_chunk.payload["scored"] < first_chunk.payload["total"]
        assert first_chunk.payload["kpi_values"]
        assert job_state(thread_httpd, job_id) == "running"
        gate.release.set()
        events.extend(stream)
        types = [event.type for event in events]
        assert types[0] == "queued"
        assert "started" in types
        assert types[-1] == "done"
        assert types.count("sweep_chunk") == 8  # ceil(15 scenarios / 2 per chunk)
        seqs = [event.event_id for event in events]
        assert seqs == list(range(1, len(events) + 1))  # contiguous, no gaps

    def test_streamed_result_is_bitwise_identical_to_polled(self, thread_httpd, chunked):
        job_id = submit_sweep(thread_httpd)
        events = list(make_client(thread_httpd).stream_job(DEFAULT_SESSION_ID, job_id))
        assert events[-1].type == "done"
        streamed = events[-1].payload["result"]
        envelope = post(
            thread_httpd,
            {"action": "job_result", "params": {"job_id": job_id, "timeout_s": 60}},
        )
        assert envelope["ok"], envelope["error"]
        polled = envelope["data"]["result"]
        assert json.dumps(streamed, sort_keys=True) == json.dumps(polled, sort_keys=True)

    def test_resume_from_last_event_id_misses_and_duplicates_nothing(
        self, thread_httpd, chunked
    ):
        job_id = submit_sweep(thread_httpd)
        client = make_client(thread_httpd)
        # first connection drops after 4 events (no polite shutdown)
        first = list(
            client.stream_job(DEFAULT_SESSION_ID, job_id, max_events=4)
        )
        assert len(first) == 4
        assert client.last_event_id == first[-1].event_id
        # reconnect: the client resumes from its Last-Event-ID automatically
        second = list(client.stream_job(DEFAULT_SESSION_ID, job_id))
        seqs = [event.event_id for event in first + second]
        assert seqs == list(range(1, len(seqs) + 1))  # no misses, no duplicates
        assert (first + second)[-1].type == "done"
        assert all(event.type != "gap" for event in second)

    def test_late_subscriber_replays_a_finished_jobs_stream(
        self, thread_httpd, chunked
    ):
        job_id = submit_sweep(thread_httpd)
        assert wait_terminal(thread_httpd, job_id) == "done"
        events = list(make_client(thread_httpd).stream_job(DEFAULT_SESSION_ID, job_id))
        types = [event.type for event in events]
        assert types[0] == "queued" and types[-1] == "done"
        assert "sweep_chunk" in types


class TestStreamErrors:
    def test_unknown_job_stream_is_404(self, thread_httpd):
        with pytest.raises(StreamError) as excinfo:
            next(iter(make_client(thread_httpd).stream_job(DEFAULT_SESSION_ID, "nope")))
        assert excinfo.value.status == 404
        assert excinfo.value.body["error_kind"] == "not_found"

    def test_stream_from_wrong_session_is_404(self, thread_httpd, chunked):
        job_id = submit_sweep(thread_httpd)
        post(thread_httpd, {"action": "create_session", "params": {"session_id": "bystander"}})
        with pytest.raises(StreamError) as excinfo:
            next(iter(make_client(thread_httpd).stream_job("bystander", job_id)))
        assert excinfo.value.status == 404
        assert "does not belong" in excinfo.value.body["error"]

    def test_invalid_last_event_id_is_400(self, thread_httpd, chunked):
        job_id = submit_sweep(thread_httpd)
        host, port = thread_httpd.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/api/v1/sessions/{DEFAULT_SESSION_ID}/jobs/{job_id}/events",
            headers={"Last-Event-ID": "banana"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestCancelOnDisconnect:
    def test_disconnect_cancels_running_job_thread_executor(
        self, thread_httpd, slow_chunks, monkeypatch
    ):
        monkeypatch.setattr(app_module, "SSE_KEEPALIVE_S", 0.1)
        job_id = submit_sweep(thread_httpd, space=SLOW_SPACE)
        client = make_client(thread_httpd)
        for event in client.stream_job(
            DEFAULT_SESSION_ID, job_id, cancel_on_disconnect=True
        ):
            if event.type == "sweep_chunk":
                break  # drop the connection mid-run, no DELETE sent
        assert wait_terminal(thread_httpd, job_id, timeout=30.0) == "cancelled"

    def test_disconnect_cancels_running_job_process_executor(self, monkeypatch):
        monkeypatch.setattr(app_module, "SSE_KEEPALIVE_S", 0.1)
        httpd = start_http(workers=4, executor="process")
        try:
            envelope = post(
                httpd,
                {
                    "action": "load_use_case",
                    "params": {
                        "use_case": "deal_closing",
                        "dataset_kwargs": {"n_prospects": 2000},
                    },
                },
            )
            assert envelope["ok"], envelope["error"]
            job_id = submit_sweep(httpd, space=BIG_SPACE)
            client = make_client(httpd)
            for event in client.stream_job(
                DEFAULT_SESSION_ID, job_id, cancel_on_disconnect=True
            ):
                if event.type == "started":
                    break  # vanish as early as possible: maximal remaining work
            assert wait_terminal(httpd, job_id, timeout=60.0) == "cancelled"
        finally:
            stop_http(httpd)
