"""Statistics substrate: correlations, Shapley values, permutation importance,
bootstrap resampling, and rank-agreement measures used to verify driver
importances and quantify robustness."""

from .bootstrap import BootstrapResult, bootstrap_indices, bootstrap_statistic
from .correlation import (
    correlation_matrix,
    pearson_correlation,
    rankdata,
    spearman_correlation,
)
from .permutation import permutation_importance
from .rank import kendall_tau, ranking_from_scores, spearman_rank_agreement, top_k_overlap
from .shapley import global_shapley_importance, shapley_values

__all__ = [
    "BootstrapResult",
    "bootstrap_indices",
    "bootstrap_statistic",
    "correlation_matrix",
    "pearson_correlation",
    "spearman_correlation",
    "rankdata",
    "permutation_importance",
    "kendall_tau",
    "ranking_from_scores",
    "spearman_rank_agreement",
    "top_k_overlap",
    "global_shapley_importance",
    "shapley_values",
]
