"""Sensitivity analysis (functionality 2, paper view (H)).

Three flavours, all of which re-run the trained KPI model on hypothetically
perturbed data and compare against the original prediction:

* :func:`run_sensitivity` — the headline interaction: apply a perturbation set
  to the whole dataset, show original vs perturbed KPI and the up-/down-lift
  (the blue/yellow bars of Figure 2-H);
* :func:`run_comparison` — the *comparison analysis* feature: sweep each
  driver individually over a range of perturbation magnitudes so the user can
  "view sensitivity analysis in its entirety and compare KPI trends over all
  drivers";
* :func:`run_per_data` — the *per-data analysis* feature: perturb a single
  data point and observe the change in its own predicted KPI.
"""

from __future__ import annotations

from collections.abc import Sequence

from .model_manager import ModelManager
from .perturbation import Perturbation, PerturbationSet
from .results import ComparisonPoint, ComparisonResult, PerDataResult, SensitivityResult

__all__ = ["run_sensitivity", "run_comparison", "run_per_data"]


def run_sensitivity(
    manager: ModelManager, perturbations: PerturbationSet
) -> SensitivityResult:
    """Dataset-level sensitivity analysis.

    Parameters
    ----------
    manager:
        The session's model manager.
    perturbations:
        The perturbation set to apply to every row.

    Returns
    -------
    SensitivityResult
        Original KPI, perturbed KPI, and their difference (the up-lift).
    """
    unknown = [p.driver for p in perturbations if p.driver not in manager.drivers]
    if unknown:
        raise ValueError(
            f"perturbed drivers are not model inputs: {unknown}; "
            f"available drivers: {manager.drivers}"
        )
    original_kpi = manager.baseline_kpi()
    perturbed_kpi = manager.predict_kpi_matrix(manager.perturbed_matrix(perturbations))
    return SensitivityResult(
        kpi=manager.kpi.name,
        original_kpi=original_kpi,
        perturbed_kpi=perturbed_kpi,
        uplift=perturbed_kpi - original_kpi,
        perturbations=perturbations.to_list(),
        kpi_unit=manager.kpi.unit,
    )


def run_comparison(
    manager: ModelManager,
    drivers: Sequence[str] | None = None,
    amounts: Sequence[float] = (-40.0, -20.0, 0.0, 20.0, 40.0),
    *,
    mode: str = "percentage",
) -> ComparisonResult:
    """Comparison analysis: sweep each driver individually over ``amounts``.

    Parameters
    ----------
    manager:
        The session's model manager.
    drivers:
        Drivers to sweep (default: every model driver).
    amounts:
        Perturbation magnitudes applied one at a time to one driver at a time.
    mode:
        Perturbation mode shared by the sweep.

    Returns
    -------
    ComparisonResult
        One :class:`ComparisonPoint` per (driver, amount) pair.
    """
    chosen = list(drivers) if drivers is not None else list(manager.drivers)
    unknown = [d for d in chosen if d not in manager.drivers]
    if unknown:
        raise ValueError(f"unknown drivers for comparison analysis: {unknown}")
    if not amounts:
        raise ValueError("comparison analysis needs at least one perturbation amount")

    original_kpi = manager.baseline_kpi()
    # build every perturbed matrix up front, then evaluate the whole sweep in
    # one stacked kernel traversal instead of one model call per point
    baseline_matrix = manager.driver_matrix()
    sweep: list[tuple[str, float]] = []
    matrices: list = []
    for driver in chosen:
        for amount in amounts:
            sweep.append((driver, float(amount)))
            if amount != 0:
                matrices.append(
                    Perturbation(driver, float(amount), mode).apply_to_matrix(
                        baseline_matrix, manager.drivers
                    )
                )
    kpis = iter(manager.predict_kpi_batch(matrices))
    points = [
        ComparisonPoint(
            driver=driver,
            amount=amount,
            kpi_value=original_kpi if amount == 0 else float(next(kpis)),
        )
        for driver, amount in sweep
    ]
    return ComparisonResult(
        kpi=manager.kpi.name,
        original_kpi=original_kpi,
        mode=mode,
        points=tuple(points),
    )


def run_per_data(
    manager: ModelManager, row_index: int, perturbations: PerturbationSet
) -> PerDataResult:
    """Per-data analysis: perturb one row and re-predict its KPI.

    Parameters
    ----------
    manager:
        The session's model manager.
    row_index:
        Index of the data point to drill into.
    perturbations:
        Perturbations applied to that row only.
    """
    frame = manager.frame
    if not 0 <= row_index < frame.n_rows:
        raise IndexError(
            f"row index {row_index} out of range for a dataset of {frame.n_rows} rows"
        )
    unknown = [p.driver for p in perturbations if p.driver not in manager.drivers]
    if unknown:
        raise ValueError(f"perturbed drivers are not model inputs: {unknown}")

    original_prediction = float(manager.baseline_rows()[row_index])
    perturbed_frame = perturbations.apply_to_row(frame, row_index)
    perturbed_prediction = manager.predict_row(perturbed_frame, row_index)

    original_row = {d: frame.column(d)[row_index] for d in manager.drivers}
    perturbed_row = {d: perturbed_frame.column(d)[row_index] for d in manager.drivers}
    return PerDataResult(
        kpi=manager.kpi.name,
        row_index=row_index,
        original_prediction=original_prediction,
        perturbed_prediction=perturbed_prediction,
        original_row=original_row,
        perturbed_row=perturbed_row,
        perturbations=perturbations.to_list(),
    )
