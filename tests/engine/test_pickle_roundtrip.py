"""Pickle round-trips for everything the process executor ships.

The :class:`~repro.engine.process.ProcessExecutor` moves fitted model
managers, scenario spaces, and perturbation sets across the process boundary
by pickling them onto a worker's task queue.  Correctness of the parallel
paths rests on those objects surviving the trip *exactly*: a rebuilt model
whose predictions move by one ulp breaks the bitwise-identity guarantee the
benchmarks enforce.  Every test here therefore asserts equality with
``==``-level strictness (``np.array_equal``), never ``allclose``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.perturbation import Perturbation, PerturbationSet
from repro.ml import ForestKernel, RandomForestClassifier, TreeKernel
from repro.scenarios import Axis, BudgetConstraint, ScenarioSpace


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture(scope="module")
def forest_and_data(classification_module_data):
    X, y = classification_module_data
    forest = RandomForestClassifier(n_estimators=8, max_depth=5, random_state=0)
    forest.fit(X, y)
    return forest, X


@pytest.fixture(scope="module")
def classification_module_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 3))
    logits = 1.5 * X[:, 0] - 2.0 * X[:, 1] + 0.5 * rng.normal(size=300)
    return X, (logits > 0).astype(float)


class TestFittedModels:
    def test_forest_classifier_predictions_identical(self, forest_and_data):
        forest, X = forest_and_data
        clone = roundtrip(forest)
        assert np.array_equal(clone.predict_proba(X), forest.predict_proba(X))
        assert np.array_equal(clone.predict(X), forest.predict(X))

    def test_tree_and_linear_managers_identical(self, deal_manager, marketing_session):
        # one discrete-KPI manager (random forest) and one continuous
        # (linear pipeline) — the two model families the executor ships
        for manager in (deal_manager, marketing_session.model):
            manager.fit()
            clone = roundtrip(manager)
            matrix = manager.driver_matrix()
            assert np.array_equal(clone.driver_matrix(), matrix)
            assert np.array_equal(
                clone.predict_rows_matrix(matrix), manager.predict_rows_matrix(matrix)
            )
            assert clone.baseline_kpi() == manager.baseline_kpi()

    def test_manager_fingerprint_survives(self, deal_manager):
        assert roundtrip(deal_manager).fingerprint() == deal_manager.fingerprint()


class TestKernels:
    def test_tree_kernel_arrays_identical(self, forest_and_data):
        forest, X = forest_and_data
        kernel = forest.estimators_[0].kernel_
        clone = roundtrip(kernel)
        assert isinstance(clone, TreeKernel)
        for attr in ("feature", "threshold", "left", "right", "value"):
            assert np.array_equal(getattr(clone, attr), getattr(kernel, attr))
        assert np.array_equal(clone.predict(X), kernel.predict(X))

    def test_forest_kernel_arrays_identical(self, forest_and_data):
        forest, X = forest_and_data
        kernel = forest.kernel_
        clone = roundtrip(kernel)
        assert isinstance(clone, ForestKernel)
        for attr in ("feature", "threshold", "left", "right", "value", "roots"):
            assert np.array_equal(getattr(clone, attr), getattr(kernel, attr))
        assert np.array_equal(clone.predict(X), kernel.predict(X))


class TestScenarioObjects:
    def test_grid_space_identical(self):
        space = ScenarioSpace(
            [
                Axis.from_dict({"driver": "A", "start": -30, "stop": 30, "step": 15}),
                Axis.from_dict({"driver": "B", "amounts": [0.0, 10.0, 20.0]}),
            ],
            constraints=[BudgetConstraint.of(40.0)],
        )
        clone = roundtrip(space)
        assert clone.to_dict() == space.to_dict()
        assert clone.scenarios() == space.scenarios()

    def test_sampled_space_identical(self):
        space = ScenarioSpace(
            [
                Axis.from_dict({"driver": "A", "start": -20, "stop": 20, "step": 2}),
                Axis.from_dict({"driver": "B", "start": -20, "stop": 20, "step": 2}),
            ]
        ).sampled(25, method="halton", seed=9)
        clone = roundtrip(space)
        assert clone.scenarios() == space.scenarios()

    def test_perturbation_set_identical(self, deal_manager):
        drivers = deal_manager.drivers[:2]
        pset = PerturbationSet(
            [
                Perturbation(drivers[0], 25.0, "percentage"),
                Perturbation(drivers[1], -5.0, "absolute"),
            ]
        )
        clone = roundtrip(pset)
        assert clone.to_list() == pset.to_list()
        matrix = deal_manager.driver_matrix()
        assert np.array_equal(
            clone.apply_to_matrix(matrix, deal_manager.drivers),
            pset.apply_to_matrix(matrix, deal_manager.drivers),
        )
