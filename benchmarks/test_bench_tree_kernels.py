"""P2 (performance): flattened tree kernels vs the recursive prediction path.

Every what-if interaction re-scores perturbed matrices with the trained tree
ensemble, so forest prediction *is* the hot path.  This benchmark times the
pre-kernel traversal (per-row recursive walks, one ``predict_proba`` per tree)
against the flattened-array kernels on the paper's deal-closing dataset, and
verifies on **every** registry dataset that the kernels return bitwise-
identical predictions — the speedup may not move a single ulp.

Timings are written to ``BENCH_tree_kernels.json`` (path overridable via the
``BENCH_OUTPUT`` environment variable); the CI ``bench`` job uploads that file
as a workflow artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.datasets import get_use_case, list_use_cases
from repro.ml import RandomForestClassifier, RandomForestRegressor

from .conftest import print_table

#: Moderate per-use-case sizes so the equivalence sweep stays fast.
DATASET_KWARGS = {
    "marketing_mix": {"n_days": 120},
    "customer_retention": {"n_customers": 400},
    "deal_closing": {"n_prospects": 800},
}

#: The headline timing configuration from the issue: 800-row deal dataset,
#: 50-tree forest, whole-matrix batch prediction.
TIMING_USE_CASE = "deal_closing"
TIMING_ROWS = 800
TIMING_TREES = 50
MIN_SPEEDUP = 5.0


def _design_matrix(use_case):
    frame = use_case.load(**DATASET_KWARGS[use_case.key])
    drivers = [
        name
        for name in frame.numeric_columns()
        if name != use_case.kpi and name not in use_case.excluded_drivers
    ]
    X = frame.to_matrix(drivers)
    y = frame.to_vector(use_case.kpi)
    return X, y


def _fit_forest(use_case, X, y, n_estimators=20):
    if use_case.kpi_kind == "discrete":
        forest = RandomForestClassifier(
            n_estimators=n_estimators, max_depth=8, random_state=0
        )
    else:
        forest = RandomForestRegressor(
            n_estimators=n_estimators, max_depth=8, random_state=0
        )
    return forest.fit(X, y)


def _predict_both(forest, X):
    if isinstance(forest, RandomForestClassifier):
        return forest.predict_proba(X), forest._predict_proba_recursive(X)
    return forest.predict(X), forest._predict_recursive(X)


def test_kernel_predictions_bitwise_equal_on_every_dataset():
    """Kernels must agree exactly with the recursive walk on all registry data."""
    for use_case in list_use_cases():
        X, y = _design_matrix(use_case)
        forest = _fit_forest(use_case, X, y)
        kernel_out, recursive_out = _predict_both(forest, X)
        assert np.array_equal(kernel_out, recursive_out), (
            f"kernel and recursive predictions diverge on {use_case.key}"
        )
        for tree in forest.estimators_[:3]:
            assert np.array_equal(
                tree.kernel_.predict(X),
                np.atleast_2d(tree._predict_values_recursive(X).T).T,
            )


def test_forest_kernel_speedup_and_artifact(benchmark):
    use_case = get_use_case(TIMING_USE_CASE)
    X, y = _design_matrix(use_case)
    assert X.shape[0] == TIMING_ROWS
    forest = _fit_forest(use_case, X, y, n_estimators=TIMING_TREES)

    # warm both paths once so timing excludes lazy setup
    kernel_out, recursive_out = _predict_both(forest, X)
    assert np.array_equal(kernel_out, recursive_out)

    started = time.perf_counter()
    forest._predict_proba_recursive(X)
    recursive_s = time.perf_counter() - started

    def kernel_batch():
        return forest.predict_proba(X)

    benchmark.pedantic(kernel_batch, rounds=5, iterations=3)
    kernel_s = float(benchmark.stats["mean"])
    speedup = recursive_s / kernel_s

    record = {
        "benchmark": "tree_kernels",
        "dataset": TIMING_USE_CASE,
        "n_rows": TIMING_ROWS,
        "n_trees": TIMING_TREES,
        "n_features": int(X.shape[1]),
        "recursive_ms": recursive_s * 1000.0,
        "kernel_ms": kernel_s * 1000.0,
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
        "bitwise_identical": True,
    }
    benchmark.extra_info.update(record)

    output_path = os.environ.get("BENCH_OUTPUT", "BENCH_tree_kernels.json")
    with open(output_path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    print_table(
        "P2: forest batch prediction, recursive vs kernel",
        [
            {
                "path": "recursive (per row per tree)",
                "ms": record["recursive_ms"],
                "speedup": 1.0,
            },
            {"path": "flattened kernels", "ms": record["kernel_ms"], "speedup": speedup},
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup over the recursive path, got "
        f"{speedup:.1f}x ({record['recursive_ms']:.1f}ms -> {record['kernel_ms']:.1f}ms)"
    )
