"""Reusable engine benchmark workload (CLI ``bench-engine`` + pytest bench).

The workload mirrors the paper's heavy interactive moment — several users
firing whole-dataset comparison sweeps at once — and answers three questions:

* **speedup** — N distinct sweeps on N sessions submitted to a worker pool
  versus the same sweeps dispatched synchronously one after another.  Two
  serialized baselines are timed so the gain decomposes honestly: the
  blocking synchronous protocol (``serial_s`` — what the seed backend did),
  and the same jobs on a 1-worker pool (``engine_serial_s`` — isolating
  worker concurrency from the chunked runners' cache-locality win, which is
  real even on one core: the one-shot sweep stacks every perturbed matrix
  into one huge kernel traversal whose working set falls out of cache);
* **equality** — every job payload must be bitwise identical to the
  synchronous response for the same analysis (the chunked checkpointed
  runners may not move a single ulp);
* **coalescing** — identical sensitivity submissions made while the pool is
  busy must collapse onto one job and one execution.

Thread-level speedup is bounded by the cores the process may use, so the
summary records ``cpu_count`` alongside the measured ratio; callers asserting
a floor should scale it accordingly (CI runners have ≥4 cores, dev sandboxes
sometimes 1).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

__all__ = ["run_engine_benchmark", "available_cpus"]


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _async_round(server, session_ids, sweeps) -> None:
    """Submit every sweep as a job and wait for all results (untimed warm
    round: starts worker processes and ships fitted models per fingerprint)."""
    job_ids = []
    for session_id, sweep in zip(session_ids, sweeps):
        response = server.request(
            "submit",
            {"action": "comparison", "params": dict(sweep), "session_id": session_id},
        )
        if not response.ok:
            raise RuntimeError(f"warm submit failed: {response.error}")
        job_ids.append(response.data["job"]["job_id"])
    for job_id in job_ids:
        response = server.request("job_result", job_id=job_id, timeout_s=600.0)
        if not response.ok:
            raise RuntimeError(f"warm job_result failed: {response.error}")


def _sweep_amounts(job_index: int, amounts_per_job: int) -> list[float]:
    """A distinct, zero-free amount grid per job (every point costs a matrix)."""
    base = [-40.0 + 80.0 * i / max(1, amounts_per_job - 1) for i in range(amounts_per_job)]
    return [round(a + 0.7 * (job_index + 1), 3) for a in base]


def run_engine_benchmark(
    *,
    use_case: str = "deal_closing",
    rows: int = 800,
    n_jobs: int = 4,
    workers: int = 4,
    amounts_per_job: int = 8,
    coalesce_submissions: int = 6,
    seed: int = 0,
    executor: str = "thread",
) -> dict[str, Any]:
    """Run the concurrent-sweep workload; returns a JSON-safe summary.

    Raises ``RuntimeError`` on any request failure or payload mismatch, so
    callers can trust every number in the summary.

    With ``executor="process"`` both servers (the measured pool and the
    1-worker serialized baseline) route the jobs through a process pool, and
    an extra *async* warm round runs on each before timing so process
    startup and the one-time model shipping don't pollute the measured
    ratios — the steady state is what users of a long-lived backend see.
    """
    from ..datasets import get_use_case
    from ..server import SessionRegistry, SystemDServer

    server = SystemDServer(
        registry=SessionRegistry(capacity=max(64, n_jobs)),
        engine_workers=workers,
        executor=executor,
    )
    dataset_kwargs = get_use_case(use_case).size_kwargs(rows)

    session_ids: list[str] = []
    for _ in range(n_jobs):
        response = server.request(
            "create_session",
            use_case=use_case,
            dataset_kwargs=dataset_kwargs,
            random_state=seed,
        )
        if not response.ok:
            raise RuntimeError(f"create_session failed: {response.error}")
        session_ids.append(response.data["session_id"])

    sweeps = [
        {"amounts": _sweep_amounts(index, amounts_per_job)}
        for index in range(n_jobs)
    ]

    def sync_once(index: int):
        response = server.request(
            "comparison", session_id=session_ids[index], **sweeps[index]
        )
        if not response.ok:
            raise RuntimeError(f"comparison failed: {response.error}")
        return response.data

    # warm-up: trains the (shared) model, memoises baselines, and yields the
    # synchronous reference payloads the job results must match bitwise
    references = [sync_once(index) for index in range(n_jobs)]

    if executor == "process":
        _async_round(server, session_ids, sweeps)

    started = time.perf_counter()
    for index in range(n_jobs):
        sync_once(index)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    job_ids: list[str] = []
    for index in range(n_jobs):
        response = server.request(
            "submit",
            {
                "action": "comparison",
                "params": dict(sweeps[index]),
                "session_id": session_ids[index],
            },
        )
        if not response.ok:
            raise RuntimeError(f"submit failed: {response.error}")
        job_ids.append(response.data["job"]["job_id"])

    results = []
    for job_id in job_ids:
        response = server.request("job_result", job_id=job_id, timeout_s=600.0)
        if not response.ok:
            raise RuntimeError(f"job_result failed: {response.error}")
        results.append(response.data["result"])
    parallel_s = time.perf_counter() - started

    bitwise_equal = all(
        json.dumps(result, sort_keys=True) == json.dumps(reference, sort_keys=True)
        for result, reference in zip(results, references)
    )
    if not bitwise_equal:
        raise RuntimeError("async job payloads diverged from the synchronous path")

    # serialized-engine baseline: the identical jobs on a 1-worker pool
    # (sessions share the trained models through the same model cache)
    serial_server = SystemDServer(
        registry=SessionRegistry(capacity=max(64, n_jobs)),
        model_cache=server.model_cache,
        engine_workers=1,
        executor=executor,
    )
    serial_session_ids = []
    for _ in range(n_jobs):
        response = serial_server.request(
            "create_session",
            use_case=use_case,
            dataset_kwargs=dataset_kwargs,
            random_state=seed,
        )
        if not response.ok:
            raise RuntimeError(f"create_session failed: {response.error}")
        serial_session_ids.append(response.data["session_id"])
    for index in range(n_jobs):  # warm the per-session baselines
        response = serial_server.request(
            "comparison", session_id=serial_session_ids[index], **sweeps[index]
        )
        if not response.ok:
            raise RuntimeError(f"warm-up comparison failed: {response.error}")
    if executor == "process":
        _async_round(serial_server, serial_session_ids, sweeps)
    started = time.perf_counter()
    serial_job_ids = []
    for index in range(n_jobs):
        response = serial_server.request(
            "submit",
            {
                "action": "comparison",
                "params": dict(sweeps[index]),
                "session_id": serial_session_ids[index],
            },
        )
        if not response.ok:
            raise RuntimeError(f"submit failed: {response.error}")
        serial_job_ids.append(response.data["job"]["job_id"])
    for job_id in serial_job_ids:
        response = serial_server.request("job_result", job_id=job_id, timeout_s=600.0)
        if not response.ok:
            raise RuntimeError(f"job_result failed: {response.error}")
    engine_serial_s = time.perf_counter() - started
    serial_server.close()

    # coalescing: park a sweep on session 0 (its job holds the session lock),
    # so identical sensitivity submissions cannot complete mid-loop — they
    # must attach to one in-flight job and run once when the blocker ends
    blocker = server.request(
        "submit",
        {
            "action": "comparison",
            "params": dict(sweeps[0]),
            "session_id": session_ids[0],
        },
    )
    if not blocker.ok:
        raise RuntimeError(f"blocker submit failed: {blocker.error}")
    blocker_id = blocker.data["job"]["job_id"]
    for _ in range(5000):
        status = server.request("job_status", job_id=blocker_id)
        if status.ok and status.data["job"]["state"] != "pending":
            break
        time.sleep(0.001)
    driver = server.request("describe_dataset", session_id=session_ids[1]).data["drivers"][0]
    sensitivity_params = {"perturbations": {driver: 25.0}}
    coalesce_ids = set()
    coalesced_flags = []
    for _ in range(max(1, coalesce_submissions)):
        response = server.request(
            "submit",
            {
                "action": "sensitivity",
                "params": sensitivity_params,
                "session_id": session_ids[0],
            },
        )
        if not response.ok:
            raise RuntimeError(f"coalescing submit failed: {response.error}")
        coalesce_ids.add(response.data["job"]["job_id"])
        coalesced_flags.append(bool(response.data["coalesced"]))

    coalesce_job_id = next(iter(coalesce_ids))
    coalesce_result = server.request("job_result", job_id=coalesce_job_id, timeout_s=600.0)
    if not coalesce_result.ok:
        raise RuntimeError(f"coalesced job failed: {coalesce_result.error}")
    sensitivity_sync = server.request(
        "sensitivity", session_id=session_ids[0], **sensitivity_params
    )
    coalesced_equal = json.dumps(coalesce_result.data["result"], sort_keys=True) == json.dumps(
        sensitivity_sync.data, sort_keys=True
    )

    engine_stats = server.engine.stats()
    server.close()
    return {
        "use_case": use_case,
        "rows": rows,
        "n_jobs": n_jobs,
        "executor": executor,
        "workers": workers,
        "amounts_per_job": amounts_per_job,
        "cpu_count": available_cpus(),
        "serial_s": serial_s,
        "engine_serial_s": engine_serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "worker_speedup": engine_serial_s / parallel_s if parallel_s else float("inf"),
        "bitwise_equal": bitwise_equal,
        "coalescing": {
            "submissions": max(1, coalesce_submissions),
            "distinct_jobs": len(coalesce_ids),
            "coalesced_flags": coalesced_flags,
            "attached": coalesce_result.data["job"]["attached"],
            "result_matches_sync": coalesced_equal,
        },
        "engine": engine_stats,
    }
