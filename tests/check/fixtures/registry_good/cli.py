"""Good fixture CLI: _COMMANDS mirrors the registered subparsers."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="fixture")
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("run", help="run it")
    subparsers.add_parser("serve", help="serve it")
    return parser


def _command_run(args):
    return 0


def _command_serve(args):
    return 0


_COMMANDS = {
    "run": _command_run,
    "serve": _command_serve,
}
