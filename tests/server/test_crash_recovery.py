"""True crash recovery: SIGKILL the serving process, restart, compare bitwise.

Each test spawns ``python -m repro serve --port 0 --state-dir TMP`` as a real
subprocess, drives it over HTTP, kills it with SIGKILL (no atexit, no flush —
the closest a test gets to a power cut), restarts over the same state
directory with ``--recover``, and asserts the durable state came back
bitwise: scenario ledgers, finished job results, share ids.  A job that was
still in flight at the kill must come back ``failed`` with the
``server_restart`` reason — never silently dropped, never hanging a poller.

Runs under both engine executors, since the process executor journals through
the same backend from a different worker topology.

Set ``REPRO_CRASH_ARTIFACT_DIR`` to copy each test's ``state.sqlite3`` there
(CI uploads the directory as an artifact when a leg fails).
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
READY_TIMEOUT_S = 90.0
DRIVER = "Open Marketing Email"

pytestmark = pytest.mark.parametrize("executor", ["thread", "process"])


class ServerProc:
    """One ``repro serve`` subprocess and its parsed base URL."""

    def __init__(self, state_dir: Path, *, executor: str, recover: bool = False):
        argv = [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--workers",
            "2",
            "--executor",
            executor,
            "--state-dir",
            str(state_dir),
        ]
        if recover:
            argv.append("--recover")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        # own process group: the kill must take out the engine's spawned
        # process-pool workers too — they inherit the stdout pipe, and a
        # surviving worker would block the EOF drain below forever
        self.proc = subprocess.Popen(
            argv,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            start_new_session=True,
        )
        self.lines: list[str] = []
        self.base_url = self._await_ready()

    def _await_ready(self) -> str:
        deadline = time.monotonic() + READY_TIMEOUT_S
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                if self.proc.poll() is not None:
                    raise RuntimeError(
                        "server exited before binding:\n" + "".join(self.lines)
                    )
                continue
            self.lines.append(line)
            if "listening on http://" in line:
                address = line.split("listening on ", 1)[1].split()[0]
                return address.rstrip("/")
        self.proc.kill()
        raise RuntimeError("server never printed its banner:\n" + "".join(self.lines))

    # ------------------------------------------------------------------ #
    def get(self, path: str, timeout: float = 60.0) -> tuple[int, dict]:
        request = urllib.request.Request(self.base_url + path)
        return self._fetch(request, timeout)

    def post(self, path: str, payload: dict, timeout: float = 60.0) -> tuple[int, dict]:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        return self._fetch(request, timeout)

    @staticmethod
    def _fetch(request, timeout: float) -> tuple[int, dict]:
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode("utf-8"))

    # ------------------------------------------------------------------ #
    def sigkill(self) -> None:
        """The crash: SIGKILL the whole group, no shutdown hooks, no WAL
        checkpoint, no surviving pool workers."""
        self._killpg(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass
        self._killpg(signal.SIGKILL)  # reap any orphaned pool workers
        if self.proc.poll() is None:
            self.proc.wait(timeout=10)
        self._drain_stdout()

    def _killpg(self, sig: int) -> None:
        try:
            os.killpg(self.proc.pid, sig)
        except ProcessLookupError:
            pass

    def _drain_stdout(self) -> None:
        stdout = self.proc.stdout
        if stdout is None:
            return
        # non-blocking: every group member is dead, but never risk hanging on
        # a pipe some straggler still holds
        os.set_blocking(stdout.fileno(), False)
        try:
            rest = stdout.read()
            if rest:
                self.lines.extend(rest.splitlines(keepends=True))
        except (OSError, ValueError):
            pass
        stdout.close()


@pytest.fixture
def state_dir(tmp_path):
    state = tmp_path / "state"
    state.mkdir()
    yield state
    artifact_dir = os.environ.get("REPRO_CRASH_ARTIFACT_DIR")
    if artifact_dir:
        target = Path(artifact_dir)
        target.mkdir(parents=True, exist_ok=True)
        for db in state.glob("*.sqlite3"):
            shutil.copy(db, target / f"{db.stem}-{db.stat().st_ino}.sqlite3")


def populate(server: ServerProc, sid: str) -> dict:
    """Create a session, track two scenarios, finish one job; return the
    pre-crash observations the restarted server must reproduce bitwise."""
    status, created = server.post("/api/v1/sessions", {"session_id": sid})
    assert status == 201, created
    share_id = created["data"]["share_id"]
    status, loaded = server.post(
        "/",
        {
            "action": "load_use_case",
            "session_id": sid,
            "params": {
                "use_case": "deal_closing",
                "dataset_kwargs": {"n_prospects": 80},
                "random_state": 3,
            },
        },
    )
    assert status == 200 and loaded["ok"], loaded
    for pct in (10.0, 25.0):
        status, ran = server.post(
            "/",
            {
                "action": "sensitivity",
                "session_id": sid,
                "params": {
                    "perturbations": {DRIVER: pct},
                    "track_as": f"email +{pct:g}%",
                },
            },
        )
        assert status == 200 and ran["ok"], ran

    status, submitted = server.post(
        f"/api/v1/sessions/{sid}/jobs",
        {"action": "sensitivity", "params": {"perturbations": {DRIVER: 33.0}}},
    )
    assert status == 201, submitted
    job_id = submitted["data"]["job"]["job_id"]
    status, result = server.get(
        f"/api/v1/sessions/{sid}/jobs/{job_id}?result=1&wait=1&timeout_s=60"
    )
    assert status == 200 and result["ok"], result

    status, scenarios = server.get(f"/api/v1/sessions/{sid}/scenarios")
    assert status == 200, scenarios
    return {
        "share_id": share_id,
        "job_id": job_id,
        "job_result": result["data"]["result"],
        "scenarios": scenarios["data"],
    }


class TestSigkillRecovery:
    def test_state_survives_sigkill_bitwise(self, state_dir, executor):
        first = ServerProc(state_dir, executor=executor)
        try:
            sid = "s-crash"
            before = populate(first, sid)
            # leave a sweep in flight so the crash interrupts a real job; the
            # space is large enough that the kill always beats its completion
            status, inflight = first.post(
                "/",
                {
                    "action": "sweep",
                    "session_id": sid,
                    "params": {
                        "space": {
                            "axes": [
                                {"driver": DRIVER, "start": -40, "stop": 40, "step": 1},
                                {"driver": "Call", "start": -40, "stop": 40, "step": 1},
                            ]
                        }
                    },
                },
            )
            assert status == 200 and inflight["ok"], inflight
            inflight_id = inflight["data"]["job"]["job_id"]
            first.sigkill()
        finally:
            first.stop()

        second = ServerProc(state_dir, executor=executor, recover=True)
        try:
            # the eagerly recovered session serves its ledger bitwise
            status, scenarios = second.get(f"/api/v1/sessions/{sid}/scenarios")
            assert status == 200, scenarios
            assert scenarios["data"] == before["scenarios"]

            # the finished job's result is reported verbatim
            status, result = second.get(
                f"/api/v1/sessions/{sid}/jobs/{before['job_id']}?result=1"
            )
            assert status == 200 and result["ok"], result
            assert result["data"]["result"] == before["job_result"]

            # the share id still resolves to the session
            status, resolved = second.get(
                f"/api/v1/sessions/share/{before['share_id']}"
            )
            assert status == 200, resolved
            assert resolved["data"]["session"]["session_id"] == sid

            # the job killed mid-flight is failed, not dropped or hanging
            status, interrupted = second.get(
                f"/api/v1/sessions/{sid}/jobs/{inflight_id}"
            )
            assert status == 200, interrupted
            assert interrupted["data"]["job"]["state"] == "failed"
            assert interrupted["data"]["job"]["error"] == "server_restart"

            # recovery counters surface through the persistence route
            status, persist = second.get("/api/v1/persistence")
            assert status == 200, persist
            assert persist["data"]["recovered_sessions"] >= 1
            assert persist["data"]["jobs"]["interrupted_total"] >= 1
            assert persist["data"]["persistence"]["kind"] == "sqlite"
        finally:
            second.stop()
        assert not any("Traceback" in line for line in second.lines), second.lines

    def test_lazy_recovery_without_recover_flag(self, state_dir, executor):
        first = ServerProc(state_dir, executor=executor)
        try:
            sid = "s-lazy"
            before = populate(first, sid)
            first.sigkill()
        finally:
            first.stop()

        second = ServerProc(state_dir, executor=executor)
        try:
            # first touch rebuilds the session transparently
            status, scenarios = second.get(f"/api/v1/sessions/{sid}/scenarios")
            assert status == 200, scenarios
            assert scenarios["data"] == before["scenarios"]
        finally:
            second.stop()
