"""Synthetic marketing-mix dataset (use case U1).

The paper's U1 dataset "describ[es] investments made over a period of 6 months
on 5 media channels (Internet, Facebook, YouTube, TV and Radio) and
corresponding sales achieved per day".  Sigma's real spend data is
proprietary, so this generator produces a 6-month daily panel with:

* per-channel daily investments with realistic scales and weekly seasonality;
* sales responding to each channel with diminishing returns (square-root
  response curves, the standard marketing-mix assumption), plus a baseline and
  weekly seasonality;
* channel effectiveness ordered Internet > Facebook > YouTube > TV > Radio so
  the driver-importance view has a definite planted ranking to recover.

The KPI (``Sales``) is continuous, so SystemD trains a linear regression on
this use case.
"""

from __future__ import annotations

import numpy as np

from ..frame import Column, DataFrame

__all__ = [
    "MARKETING_CHANNELS",
    "MARKETING_KPI",
    "CHANNEL_EFFECTIVENESS",
    "CHANNEL_DAILY_BUDGET",
    "load_marketing_mix",
]

#: The five media channels of use case U1.
MARKETING_CHANNELS = ("Internet", "Facebook", "YouTube", "TV", "Radio")

#: KPI column name (continuous).
MARKETING_KPI = "Sales"

#: Incremental sales per sqrt-dollar of spend — the planted effectiveness
#: ordering the driver-importance view should recover.
CHANNEL_EFFECTIVENESS = {
    "Internet": 95.0,
    "Facebook": 70.0,
    "YouTube": 55.0,
    "TV": 30.0,
    "Radio": 18.0,
}

#: Mean daily spend per channel, in dollars.
CHANNEL_DAILY_BUDGET = {
    "Internet": 1400.0,
    "Facebook": 1100.0,
    "YouTube": 900.0,
    "TV": 1600.0,
    "Radio": 500.0,
}

_BASELINE_SALES = 20_000.0
_WEEKLY_AMPLITUDE = 0.02


def load_marketing_mix(
    n_days: int = 180, *, random_state: int = 11, noise: float = 600.0
) -> DataFrame:
    """Generate the synthetic marketing-mix daily panel.

    Parameters
    ----------
    n_days:
        Number of daily observations (180 ≈ the paper's six months).
    random_state:
        Seed for reproducibility.
    noise:
        Standard deviation of the Gaussian noise added to daily sales.

    Returns
    -------
    DataFrame
        Columns: ``Day`` (1-based index), ``Day Of Week`` (0-6), one spend
        column per channel, and the continuous KPI ``Sales``.
    """
    if n_days < 14:
        raise ValueError("n_days must cover at least two weeks")
    rng = np.random.default_rng(random_state)

    day_index = np.arange(1, n_days + 1)
    day_of_week = (day_index - 1) % 7

    spend: dict[str, np.ndarray] = {}
    for position, channel in enumerate(MARKETING_CHANNELS):
        base = CHANNEL_DAILY_BUDGET[channel]
        # spend drifts smoothly (campaign pacing) with day-to-day jitter; the
        # phase offset is deterministic per channel so the panel is reproducible
        phase = 2.0 * np.pi * position / len(MARKETING_CHANNELS)
        drift = 1.0 + 0.25 * np.sin(2 * np.pi * day_index / 60.0 + phase)
        jitter = rng.gamma(shape=8.0, scale=1.0 / 8.0, size=n_days)
        spend[channel] = np.maximum(base * drift * jitter, 0.0)

    sales = np.full(n_days, _BASELINE_SALES)
    for channel in MARKETING_CHANNELS:
        sales += CHANNEL_EFFECTIVENESS[channel] * np.sqrt(spend[channel])
    sales *= 1.0 + _WEEKLY_AMPLITUDE * np.sin(2 * np.pi * day_of_week / 7.0)
    sales += rng.normal(0.0, noise, size=n_days)
    sales = np.maximum(sales, 0.0)

    columns = [
        Column("Day", day_index, dtype="int"),
        Column("Day Of Week", day_of_week, dtype="int"),
    ]
    columns.extend(Column(channel, spend[channel], dtype="float") for channel in MARKETING_CHANNELS)
    columns.append(Column(MARKETING_KPI, sales, dtype="float"))
    return DataFrame(columns)
