"""Model selection, training, and KPI prediction.

The paper's backend "trains two widely used models: linear regression models
when the KPI objective is a continuous variable ... and classifiers when the
KPI objective is a discrete variable ... to make predictions", re-running the
prediction on every perturbation.  :class:`ModelManager` owns that lifecycle:

* choose the model family from the KPI kind (linear regression pipeline for
  continuous KPIs, random-forest classifier for discrete ones);
* train on the driver columns of the session's dataset;
* report a cross-validated *model confidence* (R² or accuracy) shown next to
  goal-inversion answers;
* predict the aggregate KPI value for any (possibly perturbed) frame — the
  single number behind each bar in the sensitivity view.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..frame import DataFrame
from ..ml import (
    LinearRegression,
    Pipeline,
    RandomForestClassifier,
    StandardScaler,
    cross_val_score,
)
from .kpi import KPI

__all__ = ["ModelManager"]


class ModelManager:
    """Trains and serves the KPI model for one (dataset, KPI, drivers) triple.

    Parameters
    ----------
    frame:
        The analysis dataset.
    kpi:
        The KPI definition.
    drivers:
        Driver column names used as model inputs.
    model_params:
        Optional overrides for the underlying estimator (e.g. ``n_estimators``).
    cv_folds:
        Folds used for the confidence estimate (0 disables cross-validation).
    random_state:
        Seed controlling the forest and the CV shuffling.
    """

    def __init__(
        self,
        frame: DataFrame,
        kpi: KPI,
        drivers: list[str],
        *,
        model_params: dict[str, Any] | None = None,
        cv_folds: int = 3,
        random_state: int | None = 0,
    ) -> None:
        if not drivers:
            raise ValueError("at least one driver is required to train a model")
        missing = [d for d in drivers if not frame.has_column(d)]
        if missing:
            raise ValueError(f"drivers not found in the dataset: {missing}")
        if kpi.name in drivers:
            raise ValueError(f"the KPI column {kpi.name!r} cannot also be a driver")
        self.frame = frame
        self.kpi = kpi
        self.drivers = list(drivers)
        self.model_params = dict(model_params or {})
        self.cv_folds = cv_folds
        self.random_state = random_state
        self._model = None
        self._confidence: float | None = None
        self._baseline_rows: np.ndarray | None = None
        self._baseline_kpi: float | None = None
        self._driver_matrix: np.ndarray | None = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Memoised identity of this manager's (dataset, KPI, drivers, params,
        seed) tuple — the key process-pool workers cache hydrated models under,
        matching the server-side :class:`~repro.core.cache.ModelCache` key."""
        if self._fingerprint is None:
            from .cache import model_fingerprint

            self._fingerprint = model_fingerprint(
                self.frame, self.kpi, self.drivers, self.model_params, self.random_state
            )
        return self._fingerprint

    # ------------------------------------------------------------------ #
    @property
    def model_kind(self) -> str:
        """Identifier of the chosen model family."""
        return (
            "random_forest_classifier" if self.kpi.is_discrete else "linear_regression"
        )

    def _build_model(self):
        if self.kpi.is_discrete:
            params = {
                "n_estimators": 40,
                "max_depth": 8,
                "max_features": "sqrt",
                "random_state": self.random_state,
            }
            params.update(self.model_params)
            return RandomForestClassifier(**params)
        params = {"fit_intercept": True}
        params.update(self.model_params)
        return Pipeline(
            [("scale", StandardScaler()), ("regress", LinearRegression(**params))]
        )

    def fit(self) -> "ModelManager":
        """Train the KPI model on the session's dataset."""
        X = self.driver_matrix()
        y = self.kpi.target_vector(self.frame)
        self._model = self._build_model()
        self._model.fit(X, y)
        return self

    @property
    def model(self):
        """The fitted estimator (fitting lazily on first access)."""
        if self._model is None:
            self.fit()
        return self._model

    # ------------------------------------------------------------------ #
    def confidence(self) -> float:
        """Cross-validated model score (accuracy or R²), clipped to [0, 1].

        The paper's goal-inversion view returns "the confidence of the model
        used" with every recommendation; this is that number.
        """
        if self._confidence is not None:
            return self._confidence
        if self.cv_folds and self.frame.n_rows >= 2 * self.cv_folds:
            X = self.driver_matrix()
            y = self.kpi.target_vector(self.frame)
            estimator = self._build_model()
            if isinstance(estimator, Pipeline):
                estimator = estimator.clone_unfitted()
            scores = cross_val_score(
                estimator, X, y, cv=self.cv_folds, random_state=self.random_state
            )
            self._confidence = float(np.clip(np.mean(scores), 0.0, 1.0))
        else:
            X = self.driver_matrix()
            y = self.kpi.target_vector(self.frame)
            self._confidence = float(np.clip(self.model.score(X, y), 0.0, 1.0))
        return self._confidence

    # ------------------------------------------------------------------ #
    def driver_matrix(self) -> np.ndarray:
        """Memoised ``float64`` design matrix of the session's dataset.

        The what-if hot path perturbs this matrix directly (see
        :meth:`perturbed_matrix`) instead of copying frames, so it is
        extracted once per manager.
        """
        if self._driver_matrix is None:
            self._driver_matrix = self.frame.to_matrix(self.drivers)
        return self._driver_matrix

    def perturbed_matrix(self, perturbations) -> np.ndarray:
        """The baseline driver matrix with ``perturbations`` applied."""
        return perturbations.apply_to_matrix(self.driver_matrix(), self.drivers)

    def predict_rows_matrix(self, X: np.ndarray) -> np.ndarray:
        """Per-row predictions for an already-extracted design matrix.

        Discrete KPIs return positive-class probabilities; continuous KPIs
        return predicted values.
        """
        model = self.model
        if self.kpi.is_discrete:
            proba = model.predict_proba(X)
            classes = list(model.classes_)
            positive = 1.0
            column = classes.index(positive) if positive in classes else len(classes) - 1
            return proba[:, column]
        return model.predict(X)

    def predict_rows(self, frame: DataFrame) -> np.ndarray:
        """Per-row predictions for the driver columns of ``frame``."""
        return self.predict_rows_matrix(frame.to_matrix(self.drivers))

    def predict_kpi(self, frame: DataFrame) -> float:
        """Aggregate KPI value predicted for ``frame``."""
        return self.kpi.aggregate(self.predict_rows(frame))

    def predict_kpi_matrix(self, X: np.ndarray) -> float:
        """Aggregate KPI value predicted for a design matrix."""
        return self.kpi.aggregate(self.predict_rows_matrix(X))

    def predict_kpi_batch(self, matrices: list[np.ndarray]) -> np.ndarray:
        """Aggregate KPI for many perturbed matrices in one model call.

        Comparison sweeps build every perturbed matrix up front, stack them,
        and run the tree kernels over the whole stack at once — one batched
        traversal instead of one model call per (driver, amount) pair.
        """
        if not matrices:
            return np.array([])
        rows = self.predict_rows_matrix(np.vstack(matrices))
        kpis = np.empty(len(matrices))
        start = 0
        for index, matrix in enumerate(matrices):
            stop = start + matrix.shape[0]
            kpis[index] = self.kpi.aggregate(rows[start:stop])
            start = stop
        return kpis

    def predict_row(self, frame: DataFrame, index: int) -> float:
        """Prediction for a single row of ``frame`` (per-data analysis)."""
        X = frame.take([index]).to_matrix(self.drivers)
        return float(self.predict_rows_matrix(X)[0])

    def baseline_rows(self) -> np.ndarray:
        """Memoised per-row predictions on the unperturbed dataset.

        Sensitivity analysis re-reads the baseline on every request; the
        dataset never changes underneath a manager (sessions swap managers
        when it does), so predicting it once is enough.
        """
        if self._baseline_rows is None:
            self._baseline_rows = self.predict_rows_matrix(self.driver_matrix())
        return self._baseline_rows

    def baseline_kpi(self) -> float:
        """KPI predicted on the original, unperturbed dataset (the blue bar)."""
        if self._baseline_kpi is None:
            self._baseline_kpi = self.kpi.aggregate(self.baseline_rows())
        return self._baseline_kpi

    # ------------------------------------------------------------------ #
    def raw_importances(self) -> np.ndarray:
        """Model-native importance scores aligned with ``self.drivers``.

        Linear pipelines report standardised coefficients (the scaler makes
        them comparable across drivers); forests report impurity-decrease
        feature importances.  Signing and normalisation into ``[-1, 1]`` is
        the driver-importance module's job.
        """
        model = self.model
        if self.kpi.is_discrete:
            return np.asarray(model.feature_importances_, dtype=np.float64)
        return np.asarray(model.coef_, dtype=np.float64)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary of the trained model."""
        return {
            "model_kind": self.model_kind,
            "kpi": self.kpi.to_dict(),
            "drivers": list(self.drivers),
            "confidence": self.confidence(),
            "n_rows": self.frame.n_rows,
        }
