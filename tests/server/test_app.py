"""Integration-style tests for the SystemD backend server."""

from __future__ import annotations

import json

import pytest

from repro.server import SystemDServer


@pytest.fixture(scope="module")
def server():
    """A server with the deal-closing use case loaded (shared across tests)."""
    instance = SystemDServer()
    response = instance.request(
        "load_use_case", use_case="deal_closing", dataset_kwargs={"n_prospects": 250}
    )
    assert response.ok, response.error
    return instance


class TestLifecycle:
    def test_list_use_cases(self):
        response = SystemDServer().request("list_use_cases")
        assert response.ok
        keys = {u["key"] for u in response.data["use_cases"]}
        assert keys == {"marketing_mix", "customer_retention", "deal_closing"}

    def test_analysis_before_load_fails_cleanly(self):
        response = SystemDServer().request("driver_importance")
        assert not response.ok
        assert "load_use_case" in response.error

    def test_load_returns_table_preview(self, server):
        response = server.request("describe_dataset")
        assert response.ok
        assert response.data["shape"][0] == 250

    def test_load_unknown_use_case(self):
        response = SystemDServer().request("load_use_case", use_case="weather")
        assert not response.ok
        assert "unknown use case" in response.error


class TestAnalysisActions:
    def test_driver_importance(self, server):
        response = server.request("driver_importance", verify=False)
        assert response.ok
        assert len(response.data["drivers"]) > 0
        assert response.data["model_kind"] == "random_forest_classifier"

    def test_sensitivity(self, server):
        response = server.request(
            "sensitivity", perturbations={"Open Marketing Email": 40.0}
        )
        assert response.ok
        assert response.data["perturbed_kpi"] != response.data["original_kpi"]

    def test_sensitivity_with_perturbation_list(self, server):
        response = server.request(
            "sensitivity",
            perturbations=[{"driver": "Call", "amount": 10.0, "mode": "percentage"}],
        )
        assert response.ok

    def test_sensitivity_missing_params(self, server):
        response = server.request("sensitivity")
        assert not response.ok

    def test_sensitivity_unknown_driver(self, server):
        response = server.request("sensitivity", perturbations={"Bogus": 1.0})
        assert not response.ok

    def test_comparison(self, server):
        response = server.request("comparison", drivers=["Call"], amounts=[0.0, 20.0])
        assert response.ok
        assert len(response.data["points"]) == 2

    def test_per_data(self, server):
        response = server.request("per_data", row_index=3, perturbations={"Call": 10.0})
        assert response.ok
        assert response.data["row_index"] == 3

    def test_per_data_missing_row_index(self, server):
        response = server.request("per_data", perturbations={"Call": 10.0})
        assert not response.ok

    def test_goal_inversion(self, server):
        response = server.request(
            "goal_inversion", goal="maximize", drivers=["Call"], n_calls=8, optimizer="random"
        )
        assert response.ok
        assert response.data["best_kpi"] >= response.data["original_kpi"]

    def test_constrained(self, server):
        response = server.request(
            "constrained",
            bounds={"Open Marketing Email": [40.0, 80.0]},
            n_calls=8,
            optimizer="random",
            track_as="constrained",
        )
        assert response.ok
        change = response.data["driver_changes"]["Open Marketing Email"]
        assert 40.0 <= change <= 80.0

    def test_constrained_requires_bounds(self, server):
        response = server.request("constrained")
        assert not response.ok

    def test_scenarios_accumulate(self, server):
        response = server.request("list_scenarios")
        assert response.ok
        assert len(response.data["scenarios"]) >= 1

    def test_set_drivers_exclude(self, server):
        response = server.request("set_drivers", exclude=["Webinar Attended"])
        assert response.ok
        assert "Webinar Attended" not in response.data["drivers"]

    def test_set_drivers_requires_parameters(self, server):
        response = server.request("set_drivers")
        assert not response.ok

    def test_set_kpi_invalid(self, server):
        response = server.request("set_kpi", kpi="Account")
        assert not response.ok


class TestWireFormat:
    def test_json_round_trip(self, server):
        raw = json.dumps(
            {"action": "sensitivity", "request_id": "r-9",
             "params": {"perturbations": {"Call": 15.0}}}
        )
        payload = json.loads(server.handle_json(raw))
        assert payload["ok"] is True
        assert payload["request_id"] == "r-9"
        assert json.dumps(payload)  # fully JSON-serialisable

    def test_invalid_json(self, server):
        payload = json.loads(server.handle_json("{not json"))
        assert payload["ok"] is False

    def test_unknown_action_is_error_response(self, server):
        payload = json.loads(server.handle_json(json.dumps({"action": "explode"})))
        assert payload["ok"] is False

    def test_unsupported_request_type(self, server):
        response = server.handle(12345)  # type: ignore[arg-type]
        assert not response.ok

    def test_request_log_grows(self, server):
        before = len(server.request_log)
        server.request("list_use_cases")
        assert len(server.request_log) == before + 1
        assert {"action", "ok", "elapsed_ms"} <= set(server.request_log[-1])

    def test_internal_errors_do_not_crash(self, server, monkeypatch):
        from repro.server import handlers

        def boom(state, params):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(handlers.HANDLERS, "list_use_cases", boom)
        response = server.request("list_use_cases")
        assert not response.ok
        assert "kaboom" in response.error


class TestHTTPWrapper:
    def test_http_round_trip(self):
        import http.client
        import threading

        from repro.server import serve_http

        httpd = serve_http(port=0)  # OS-assigned free port
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.handle_request)
        thread.start()
        try:
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            connection.request("POST", "/", body=json.dumps({"action": "list_use_cases"}))
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["ok"] is True
        finally:
            thread.join(timeout=10)
            httpd.server_close()
