"""Unit tests for the DataFrame table abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frame import (
    Column,
    ColumnNotFoundError,
    DataFrame,
    DuplicateColumnError,
    EmptyFrameError,
    LengthMismatchError,
    TypeMismatchError,
)


class TestConstruction:
    def test_from_mapping(self, tiny_frame):
        assert tiny_frame.shape == (6, 4)
        assert tiny_frame.columns == ["region", "spend", "clicks", "converted"]

    def test_from_records(self):
        frame = DataFrame.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert frame.shape == (2, 2)
        assert frame.column("a").dtype == "int"
        assert frame.column("b").dtype == "string"

    def test_from_records_missing_keys_become_nan(self):
        frame = DataFrame.from_records([{"a": 1}, {"a": 2, "b": 3.0}])
        assert np.isnan(frame.column("b")[0])

    def test_from_matrix(self):
        frame = DataFrame.from_matrix(np.arange(6).reshape(3, 2), ["x", "y"])
        assert frame.shape == (3, 2)
        assert frame.column("y").tolist() == [1.0, 3.0, 5.0]

    def test_from_matrix_wrong_names(self):
        with pytest.raises(LengthMismatchError):
            DataFrame.from_matrix(np.zeros((2, 2)), ["only_one"])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(DuplicateColumnError):
            DataFrame([Column("a", [1]), Column("a", [2])])

    def test_length_mismatch_rejected(self):
        with pytest.raises(LengthMismatchError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_empty(self):
        frame = DataFrame.empty(["a", "b"])
        assert frame.shape == (0, 2)

    def test_equality(self, tiny_frame):
        assert tiny_frame == tiny_frame.copy()
        assert tiny_frame != tiny_frame.drop("spend")


class TestAccess:
    def test_column_lookup(self, tiny_frame):
        assert tiny_frame.column("spend").mean() == 35.0

    def test_missing_column_error_lists_available(self, tiny_frame):
        with pytest.raises(ColumnNotFoundError) as excinfo:
            tiny_frame.column("nope")
        assert "spend" in str(excinfo.value)

    def test_getitem_string(self, tiny_frame):
        assert isinstance(tiny_frame["spend"], Column)

    def test_getitem_list(self, tiny_frame):
        assert tiny_frame[["spend", "clicks"]].columns == ["spend", "clicks"]

    def test_getitem_slice(self, tiny_frame):
        assert tiny_frame[1:3].n_rows == 2

    def test_row(self, tiny_frame):
        row = tiny_frame.row(0)
        assert row == {"region": "east", "spend": 10.0, "clicks": 1, "converted": False}

    def test_row_out_of_range(self, tiny_frame):
        with pytest.raises(IndexError):
            tiny_frame.row(10)

    def test_iterrows(self, tiny_frame):
        rows = list(tiny_frame.iterrows())
        assert len(rows) == 6
        assert rows[2][0] == 2

    def test_contains(self, tiny_frame):
        assert "spend" in tiny_frame
        assert "nope" not in tiny_frame

    def test_numeric_and_string_columns(self, tiny_frame):
        assert tiny_frame.numeric_columns() == ["spend", "clicks", "converted"]
        assert tiny_frame.string_columns() == ["region"]


class TestColumnOperations:
    def test_select_preserves_order(self, tiny_frame):
        assert tiny_frame.select(["clicks", "spend"]).columns == ["clicks", "spend"]

    def test_drop(self, tiny_frame):
        assert "region" not in tiny_frame.drop("region").columns

    def test_drop_missing_column(self, tiny_frame):
        with pytest.raises(ColumnNotFoundError):
            tiny_frame.drop("nope")

    def test_rename(self, tiny_frame):
        renamed = tiny_frame.rename({"spend": "cost"})
        assert "cost" in renamed.columns
        assert "spend" not in renamed.columns

    def test_with_column_appends(self, tiny_frame):
        extended = tiny_frame.with_column(name="double_spend", values=tiny_frame["spend"].mul(2))
        assert extended.column("double_spend").tolist()[:2] == [20.0, 40.0]
        assert extended.n_columns == tiny_frame.n_columns + 1

    def test_with_column_replaces_in_place(self, tiny_frame):
        replaced = tiny_frame.with_column(name="spend", values=[0.0] * 6)
        assert replaced.columns == tiny_frame.columns
        assert replaced.column("spend").sum() == 0.0

    def test_with_column_length_check(self, tiny_frame):
        with pytest.raises(LengthMismatchError):
            tiny_frame.with_column(name="bad", values=[1.0])

    def test_assign_callable(self, tiny_frame):
        derived = tiny_frame.assign(cost_per_click=lambda row: row["spend"] / row["clicks"])
        assert derived.column("cost_per_click")[0] == 10.0

    def test_assign_constant(self, tiny_frame):
        derived = tiny_frame.assign(country="US")
        assert derived.column("country").tolist() == ["US"] * 6

    def test_reorder(self, tiny_frame):
        reordered = tiny_frame.reorder(["converted", "clicks", "spend", "region"])
        assert reordered.columns[0] == "converted"

    def test_reorder_requires_same_set(self, tiny_frame):
        with pytest.raises(ColumnNotFoundError):
            tiny_frame.reorder(["spend"])


class TestRowOperations:
    def test_take(self, tiny_frame):
        taken = tiny_frame.take([5, 0])
        assert taken.column("spend").tolist() == [60.0, 10.0]

    def test_mask(self, tiny_frame):
        masked = tiny_frame.mask(tiny_frame["spend"].gt(30))
        assert masked.n_rows == 3

    def test_mask_length_check(self, tiny_frame):
        with pytest.raises(LengthMismatchError):
            tiny_frame.mask(np.array([True]))

    def test_filter_callable(self, tiny_frame):
        filtered = tiny_frame.filter(lambda row: row["region"] == "east")
        assert filtered.n_rows == 3

    def test_head_tail(self, tiny_frame):
        assert tiny_frame.head(2).column("clicks").tolist() == [1, 2]
        assert tiny_frame.tail(2).column("clicks").tolist() == [5, 6]

    def test_sample_without_replacement(self, tiny_frame):
        sampled = tiny_frame.sample(3, random_state=0)
        assert sampled.n_rows == 3

    def test_sample_too_many(self, tiny_frame):
        with pytest.raises(EmptyFrameError):
            tiny_frame.sample(10)

    def test_sample_with_replacement(self, tiny_frame):
        assert tiny_frame.sample(10, replace=True, random_state=0).n_rows == 10

    def test_sort_values(self, tiny_frame):
        ordered = tiny_frame.sort_values("spend", ascending=False)
        assert ordered.column("spend").tolist()[0] == 60.0

    def test_sort_values_string(self, tiny_frame):
        ordered = tiny_frame.sort_values("region")
        assert ordered.column("region")[0] == "east"

    def test_concat_rows(self, tiny_frame):
        combined = tiny_frame.concat_rows(tiny_frame)
        assert combined.n_rows == 12

    def test_concat_rows_mismatched_columns(self, tiny_frame):
        with pytest.raises(ColumnNotFoundError):
            tiny_frame.concat_rows(tiny_frame.drop("spend"))

    def test_drop_missing(self):
        frame = DataFrame({"a": [1.0, float("nan"), 3.0], "b": [1.0, 2.0, 3.0]})
        assert frame.drop_missing().n_rows == 2
        assert frame.drop_missing(subset=["b"]).n_rows == 3

    def test_with_row_updated(self, tiny_frame):
        updated = tiny_frame.with_row_updated(0, {"spend": 99.0})
        assert updated.column("spend")[0] == 99.0
        assert tiny_frame.column("spend")[0] == 10.0  # original untouched


class TestAggregation:
    def test_describe(self, tiny_frame):
        summary = tiny_frame.describe()
        assert summary["spend"]["mean"] == 35.0
        assert summary["region"]["n_unique"] == 2

    def test_aggregate(self, tiny_frame):
        result = tiny_frame.aggregate({"spend": "sum", "clicks": "max"})
        assert result == {"spend": 210.0, "clicks": 6.0}

    def test_aggregate_unknown_reducer(self, tiny_frame):
        with pytest.raises(TypeMismatchError):
            tiny_frame.aggregate({"spend": "mode"})


class TestModelConversions:
    def test_to_matrix(self, tiny_frame):
        matrix = tiny_frame.to_matrix(["spend", "clicks"])
        assert matrix.shape == (6, 2)
        assert matrix.dtype == np.float64

    def test_to_matrix_default_numeric(self, tiny_frame):
        assert tiny_frame.to_matrix().shape == (6, 3)

    def test_to_matrix_no_numeric(self):
        frame = DataFrame({"name": Column("name", ["a"], dtype="string")})
        with pytest.raises(EmptyFrameError):
            frame.to_matrix()

    def test_to_vector(self, tiny_frame):
        assert tiny_frame.to_vector("clicks").tolist() == [1, 2, 3, 4, 5, 6]


class TestSerialization:
    def test_to_records_round_trip(self, tiny_frame):
        rebuilt = DataFrame.from_records(tiny_frame.to_records())
        assert rebuilt.column("spend").tolist() == tiny_frame.column("spend").tolist()
        assert rebuilt.column("region").tolist() == tiny_frame.column("region").tolist()

    def test_to_dict(self, tiny_frame):
        payload = tiny_frame.to_dict()
        assert payload["clicks"] == [1, 2, 3, 4, 5, 6]

    def test_copy_is_independent(self, tiny_frame):
        copied = tiny_frame.copy()
        assert copied == tiny_frame
        assert copied is not tiny_frame
