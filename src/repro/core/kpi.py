"""KPI definitions (paper view (C): KPI Selection).

A KPI is the dependent variable of the analysis — "sales" for marketing mix,
"retained after six months" for customer retention, "deal closed?" for deal
closing.  The paper distinguishes *continuous* KPIs (modelled with linear
regression, reported as an average) and *discrete* KPIs (modelled with a
random-forest classifier, reported as the share of positive predictions — the
"deal closing rate" bar in Figure 2).  :class:`KPI` captures the column, its
kind, and how a vector of per-row predictions aggregates into the single
number shown in the KPI bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..frame import Column, DataFrame

__all__ = ["KPI", "infer_kpi_kind"]

_KINDS = ("continuous", "discrete")
_AGGREGATIONS = ("mean", "sum", "rate")


def infer_kpi_kind(column: Column) -> str:
    """Infer whether a KPI column is continuous or discrete.

    Boolean columns and numeric columns with at most two distinct values are
    treated as discrete (classification); everything else is continuous.
    """
    if column.dtype == "bool":
        return "discrete"
    if column.dtype == "string":
        raise ValueError(
            f"column {column.name!r} is textual and cannot be a KPI; "
            "choose a numeric or boolean column"
        )
    return "discrete" if column.nunique() <= 2 else "continuous"


@dataclass(frozen=True)
class KPI:
    """A key performance indicator.

    Attributes
    ----------
    name:
        Column name of the KPI in the dataset.
    kind:
        ``"continuous"`` or ``"discrete"``.
    aggregation:
        How per-row predictions become the headline KPI number:
        ``"rate"`` (share of positive predictions, as a percentage — the
        default for discrete KPIs), ``"mean"`` (default for continuous KPIs),
        or ``"sum"``.
    positive_label:
        For discrete KPIs, the label counted as a success (default 1/True).
    """

    name: str
    kind: str
    aggregation: str = ""
    positive_label: Any = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        aggregation = self.aggregation or ("rate" if self.kind == "discrete" else "mean")
        object.__setattr__(self, "aggregation", aggregation)
        if self.aggregation not in _AGGREGATIONS:
            raise ValueError(
                f"aggregation must be one of {_AGGREGATIONS}, got {self.aggregation!r}"
            )
        if self.kind == "continuous" and self.aggregation == "rate":
            raise ValueError("a continuous KPI cannot use the 'rate' aggregation")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_frame(
        cls, frame: DataFrame, name: str, *, aggregation: str = "", positive_label: Any = True
    ) -> "KPI":
        """Build a KPI for column ``name`` of ``frame``, inferring its kind."""
        column = frame.column(name)
        return cls(
            name=name,
            kind=infer_kpi_kind(column),
            aggregation=aggregation,
            positive_label=positive_label,
        )

    @property
    def is_discrete(self) -> bool:
        """Whether the KPI is discrete (classification)."""
        return self.kind == "discrete"

    @property
    def unit(self) -> str:
        """Display unit of the aggregate KPI value."""
        return "%" if self.aggregation == "rate" else ""

    def target_vector(self, frame: DataFrame) -> np.ndarray:
        """Extract the training target from ``frame``.

        Discrete KPIs become 0/1 with 1 marking ``positive_label``;
        continuous KPIs are returned as floats.
        """
        column = frame.column(self.name)
        if self.is_discrete:
            if column.dtype == "bool":
                values = column.to_numeric()
                positive = 1.0 if self.positive_label in (True, 1, 1.0) else 0.0
                return (values == positive).astype(np.float64)
            values = column.to_numeric()
            return (values == float(self.positive_label)).astype(np.float64)
        return column.to_numeric()

    def aggregate(self, predictions: np.ndarray) -> float:
        """Collapse per-row predictions into the headline KPI value.

        For the ``"rate"`` aggregation, predictions are interpreted as positive
        -class probabilities (or 0/1 labels) and the result is a percentage in
        ``[0, 100]``; for ``"mean"``/``"sum"`` the result is in the KPI's own
        unit.
        """
        predictions = np.asarray(predictions, dtype=np.float64)
        if predictions.size == 0:
            raise ValueError("cannot aggregate zero predictions")
        if self.aggregation == "rate":
            return float(np.clip(predictions, 0.0, 1.0).mean() * 100.0)
        if self.aggregation == "sum":
            return float(predictions.sum())
        return float(predictions.mean())

    def observed_value(self, frame: DataFrame) -> float:
        """The KPI aggregated over the *observed* labels (no model involved)."""
        return self.aggregate(self.target_vector(frame))

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "name": self.name,
            "kind": self.kind,
            "aggregation": self.aggregation,
            "positive_label": self.positive_label,
            "unit": self.unit,
        }
