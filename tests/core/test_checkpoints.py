"""Checkpointed (chunked) analysis runners: bitwise equivalence + cancellation.

The async engine threads a ``checkpoint`` callable through sensitivity,
comparison, goal-inversion, and driver-importance runs.  These tests pin the
two contracts the engine relies on:

* results with a checkpoint are **bitwise identical** to results without one
  (chunking only regroups independent per-row / per-matrix work), on every
  registry use case — covering both the forest and linear model families;
* the checkpoint is called with a monotone fraction in [0, 1], and an
  exception raised by it (cancellation) propagates promptly.
"""

from __future__ import annotations

import pytest

import repro.core.sensitivity as sensitivity_mod
from repro import WhatIfSession

DATASET_KWARGS = {
    "marketing_mix": {"n_days": 120},
    "customer_retention": {"n_customers": 200},
    "deal_closing": {"n_prospects": 200},
}


class Recorder:
    """A checkpoint that records every reported fraction."""

    def __init__(self):
        self.fractions: list[float] = []

    def __call__(self, fraction: float) -> None:
        self.fractions.append(fraction)

    def assert_valid(self):
        assert self.fractions, "checkpoint was never called"
        assert all(0.0 <= f <= 1.0 for f in self.fractions)
        assert self.fractions == sorted(self.fractions), "progress went backwards"


class Cancelled(Exception):
    """Stand-in for the engine's JobCancelled."""


class CancelAfter:
    """A checkpoint that raises after ``limit`` calls."""

    def __init__(self, limit: int):
        self.limit = limit
        self.calls = 0

    def __call__(self, fraction: float) -> None:
        self.calls += 1
        if self.calls > self.limit:
            raise Cancelled()


@pytest.fixture(scope="module", params=sorted(DATASET_KWARGS))
def session(request):
    return WhatIfSession.from_use_case(
        request.param, dataset_kwargs=DATASET_KWARGS[request.param], random_state=0
    )


@pytest.fixture(autouse=True)
def small_chunks(monkeypatch):
    """Force several chunks even on the small test datasets."""
    monkeypatch.setattr(sensitivity_mod, "SENSITIVITY_CHUNK_ROWS", 64)
    monkeypatch.setattr(sensitivity_mod, "COMPARISON_CHUNK_MATRICES", 2)


def first_driver(session):
    return session.drivers[0]


class TestBitwiseEquivalence:
    def test_sensitivity(self, session):
        perturbations = {first_driver(session): 20.0}
        plain = session.sensitivity(perturbations)
        recorder = Recorder()
        chunked = session.sensitivity(perturbations, checkpoint=recorder)
        assert chunked.perturbed_kpi == plain.perturbed_kpi
        assert chunked.original_kpi == plain.original_kpi
        assert chunked.uplift == plain.uplift
        recorder.assert_valid()
        assert len(recorder.fractions) > 2  # several chunks actually ran

    def test_comparison(self, session):
        amounts = [-30.0, -10.0, 0.0, 10.0, 30.0]
        plain = session.comparison_analysis(amounts=amounts)
        recorder = Recorder()
        chunked = session.comparison_analysis(amounts=amounts, checkpoint=recorder)
        assert len(chunked.points) == len(plain.points)
        for chunked_point, plain_point in zip(chunked.points, plain.points):
            assert chunked_point.driver == plain_point.driver
            assert chunked_point.amount == plain_point.amount
            assert chunked_point.kpi_value == plain_point.kpi_value
        recorder.assert_valid()

    def test_goal_inversion(self, session):
        kwargs = dict(n_calls=8, optimizer="random")
        plain = session.goal_inversion("maximize", **kwargs)
        recorder = Recorder()
        checkpointed = session.goal_inversion("maximize", checkpoint=recorder, **kwargs)
        assert checkpointed.best_kpi == plain.best_kpi
        assert checkpointed.driver_changes == plain.driver_changes
        assert checkpointed.n_evaluations == plain.n_evaluations
        recorder.assert_valid()
        assert recorder.fractions[-1] == 1.0

    def test_constrained(self, session):
        driver = first_driver(session)
        kwargs = dict(goal="maximize", n_calls=8, optimizer="random")
        bounds = {driver: (10.0, 40.0)}
        plain = session.constrained_analysis(bounds, **kwargs)
        recorder = Recorder()
        checkpointed = session.constrained_analysis(bounds, checkpoint=recorder, **kwargs)
        assert checkpointed.best_kpi == plain.best_kpi
        assert checkpointed.driver_changes == plain.driver_changes
        recorder.assert_valid()

    def test_driver_importance(self, session):
        plain = session.driver_importance(verify=True)
        recorder = Recorder()
        checkpointed = session.driver_importance(verify=True, checkpoint=recorder)
        assert [e.driver for e in checkpointed.drivers] == [e.driver for e in plain.drivers]
        for checked, reference in zip(checkpointed.drivers, plain.drivers):
            assert checked.importance == reference.importance
            assert checked.verification == reference.verification
        assert checkpointed.agreement == plain.agreement
        recorder.assert_valid()
        assert recorder.fractions[-1] == 1.0

    def test_importance_without_verification(self, session):
        plain = session.driver_importance(verify=False)
        recorder = Recorder()
        checkpointed = session.driver_importance(verify=False, checkpoint=recorder)
        for checked, reference in zip(checkpointed.drivers, plain.drivers):
            assert checked.importance == reference.importance
        recorder.assert_valid()


class TestCancellation:
    def test_sensitivity_stops_at_checkpoint(self, session):
        with pytest.raises(Cancelled):
            session.sensitivity(
                {first_driver(session): 20.0}, checkpoint=CancelAfter(1)
            )

    def test_comparison_stops_at_checkpoint(self, session):
        cancel = CancelAfter(2)
        with pytest.raises(Cancelled):
            session.comparison_analysis(
                amounts=[-30.0, -10.0, 10.0, 30.0], checkpoint=cancel
            )
        assert cancel.calls == 3  # stopped right after the limit, not at the end

    def test_goal_inversion_stops_between_evaluations(self, session):
        cancel = CancelAfter(3)
        with pytest.raises(Cancelled):
            session.goal_inversion(
                "maximize", n_calls=16, optimizer="random", checkpoint=cancel
            )
        assert cancel.calls == 4

    def test_driver_importance_stops_between_stages(self, session):
        with pytest.raises(Cancelled):
            session.driver_importance(verify=True, checkpoint=CancelAfter(2))
