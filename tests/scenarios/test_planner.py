"""Planner + grid-kernel tests: bitwise equality, ranking, profiles, cohorts."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import WhatIfSession
from repro.core.sensitivity import run_sensitivity
from repro.frame import Column, DataFrame
from repro.scenarios import (
    Axis,
    BudgetConstraint,
    ScenarioSpace,
    SweepPlanner,
    run_sweep,
)
from repro.scenarios.kernel import grid_kernel_applies, grid_sweep_kpis


@pytest.fixture(scope="module")
def deal_session() -> WhatIfSession:
    return WhatIfSession.from_use_case(
        "deal_closing", dataset_kwargs={"n_prospects": 150}, random_state=0
    )


@pytest.fixture(scope="module")
def marketing_session() -> WhatIfSession:
    return WhatIfSession.from_use_case(
        "marketing_mix", dataset_kwargs={"n_days": 90}, random_state=0
    )


def loop_kpis(manager, space) -> list[float]:
    return [
        run_sensitivity(manager, space.perturbations(scenario)).perturbed_kpi
        for scenario in space.scenarios()
    ]


class TestBitwiseEquality:
    def test_grid_kernel_matches_sensitivity_loop(self, deal_session):
        space = ScenarioSpace(
            [Axis.span(d, -40.0, 40.0, 4) for d in deal_session.drivers[:3]]
        )
        assert grid_kernel_applies(deal_session.model, space)
        result = run_sweep(deal_session.model, space, top_k=5)
        assert list(result.kpi_values) == loop_kpis(deal_session.model, space)

    def test_absolute_mode_and_value_lists(self, deal_session):
        space = ScenarioSpace(
            [
                Axis.grid(deal_session.drivers[0], -2.0, 2.0, 1.0, mode="absolute"),
                Axis.values(deal_session.drivers[1], [25.0, -25.0, 0.0]),
            ]
        )
        result = run_sweep(deal_session.model, space)
        assert list(result.kpi_values) == loop_kpis(deal_session.model, space)

    def test_single_axis_single_level(self, deal_session):
        space = ScenarioSpace([Axis.values(deal_session.drivers[0], [15.0])])
        result = run_sweep(deal_session.model, space, top_k=1)
        assert list(result.kpi_values) == loop_kpis(deal_session.model, space)

    def test_overlong_axis_falls_back_not_crashes(self, deal_session):
        # axes beyond the kernel's int16 level arrays must take the chunked
        # path (and still match the loop), not overflow
        from repro.scenarios.kernel import MAX_AXIS_LEVELS

        long_axis = Axis.values(
            deal_session.drivers[0], np.linspace(-40.0, 40.0, MAX_AXIS_LEVELS + 1)
        )
        space = ScenarioSpace([long_axis])
        assert not grid_kernel_applies(deal_session.model, space)
        small = ScenarioSpace(
            [Axis.values(deal_session.drivers[0], long_axis.amounts[:4])]
        )
        result = run_sweep(deal_session.model, small)
        assert list(result.kpi_values) == loop_kpis(deal_session.model, small)

    def test_linear_model_fallback(self, marketing_session):
        space = ScenarioSpace(
            [Axis.span(d, -20.0, 20.0, 3) for d in marketing_session.drivers[:2]]
        )
        assert not grid_kernel_applies(marketing_session.model, space)
        assert grid_sweep_kpis(marketing_session.model, space) is None
        result = run_sweep(marketing_session.model, space)
        assert list(result.kpi_values) == loop_kpis(marketing_session.model, space)

    def test_constrained_space_fallback(self, deal_session):
        space = ScenarioSpace(
            [Axis.span(d, -30.0, 30.0, 3) for d in deal_session.drivers[:3]],
            constraints=[BudgetConstraint.of(60.0)],
        )
        assert grid_sweep_kpis(deal_session.model, space) is None
        result = run_sweep(deal_session.model, space)
        assert list(result.kpi_values) == loop_kpis(deal_session.model, space)
        assert result.n_pruned == space.size - result.n_scenarios > 0

    def test_sampled_space_fallback(self, deal_session):
        space = ScenarioSpace(
            [Axis.span(d, -40.0, 40.0, 8) for d in deal_session.drivers[:3]]
        ).sampled(25, method="halton", seed=1)
        result = run_sweep(deal_session.model, space)
        assert result.n_scenarios == 25
        assert list(result.kpi_values) == loop_kpis(deal_session.model, space)

    def test_kernel_handles_negative_driver_values(self):
        # negative values flip the perturbation's monotonic direction per
        # row, turning prefix decision intervals into suffixes — the kernel
        # must stay exact (and the data is zero-heavy, exercising constants)
        rng = np.random.default_rng(5)
        n = 120
        x1 = rng.normal(0.0, 2.0, n).round(1)  # mixed signs, many repeats
        x2 = rng.poisson(1.0, n).astype(float)  # zero-heavy counts
        y = (x1 + x2 + rng.normal(0, 0.5, n)) > 0.5
        frame = DataFrame(
            {
                "x1": x1,
                "x2": x2,
                "won": Column("won", y, dtype="bool"),
            }
        )
        session = WhatIfSession(frame, "won", random_state=0)
        space = ScenarioSpace(
            [Axis.span("x1", -40.0, 40.0, 5), Axis.span("x2", -40.0, 40.0, 5)]
        )
        assert grid_kernel_applies(session.model, space)
        result = run_sweep(session.model, space)
        assert list(result.kpi_values) == loop_kpis(session.model, space)


class TestRankingAndProfiles:
    @pytest.fixture(scope="class")
    def result(self, deal_session):
        space = ScenarioSpace(
            [Axis.span(d, -40.0, 40.0, 3) for d in deal_session.drivers[:3]]
        )
        return run_sweep(deal_session.model, space, top_k=5)

    def test_frontier_is_ranked(self, result):
        kpis = [entry.kpi_value for entry in result.top]
        assert kpis == sorted(kpis, reverse=True)
        assert [entry.rank for entry in result.top] == [1, 2, 3, 4, 5]
        assert result.best_kpi == max(result.kpi_values)
        assert result.uplift == result.best_kpi - result.baseline_kpi

    def test_minimize_goal_flips_ranking(self, deal_session):
        space = ScenarioSpace(
            [Axis.span(d, -40.0, 40.0, 3) for d in deal_session.drivers[:2]]
        )
        worst = run_sweep(deal_session.model, space, goal="minimize", top_k=1)
        assert worst.best_kpi == min(worst.kpi_values)

    def test_marginals_match_manual_means(self, result):
        kpis = np.asarray(result.kpi_values)
        space = ScenarioSpace.from_dict(result.space)
        amounts = np.array([s.amounts for s in space.scenarios()])
        for column, axis in enumerate(space.axes):
            points = result.marginals[axis.driver]
            assert [p["amount"] for p in points] == list(axis.amounts)
            for point in points:
                mask = amounts[:, column] == point["amount"]
                assert point["count"] == int(mask.sum())
                assert point["mean_kpi"] == pytest.approx(kpis[mask].mean())
                assert point["best_kpi"] == pytest.approx(kpis[mask].max())

    def test_to_dict_is_json_safe(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["n_scenarios"] == len(payload["kpi_values"])
        assert payload["top"][0]["rank"] == 1


class TestCohortBreakdown:
    def test_per_cohort_values_match_manual_grouping(self):
        session = WhatIfSession.from_use_case(
            "customer_retention", dataset_kwargs={"n_customers": 160}, random_state=0
        )
        cohort_column = next(
            name
            for name in session.frame.columns
            if not session.frame.column(name).is_numeric
        )
        space = ScenarioSpace([Axis.span(session.drivers[0], -20.0, 20.0, 3)])
        result = SweepPlanner(
            session.model, space, top_k=2, cohort_column=cohort_column
        ).run()
        cohorts = result.cohorts
        assert cohorts["column"] == cohort_column
        labels = list(cohorts["baseline"])
        assert len(labels) >= 2
        # manual check: baseline per-cohort aggregate from the global model
        manager = session.model
        rows = manager.baseline_rows()
        values = session.frame.column(cohort_column)
        for label in labels:
            mask = np.array([str(values[i]) == label for i in range(len(values))])
            expected = manager.kpi.aggregate(rows[mask])
            assert cohorts["baseline"][label] == pytest.approx(expected)
        assert len(cohorts["scenarios"]) == 2
        assert set(cohorts["scenarios"][0]["per_cohort"]) == set(labels)

    def test_unknown_cohort_column_rejected(self, deal_session):
        space = ScenarioSpace([Axis.values(deal_session.drivers[0], [10.0])])
        with pytest.raises(ValueError):
            SweepPlanner(deal_session.model, space, cohort_column="nope")


class TestValidationAndProgress:
    def test_unknown_driver_rejected(self, deal_session):
        with pytest.raises(ValueError, match="not model inputs"):
            SweepPlanner(
                deal_session.model, ScenarioSpace([Axis.values("ghost", [1.0])])
            )

    def test_bad_goal_and_top_k_rejected(self, deal_session):
        space = ScenarioSpace([Axis.values(deal_session.drivers[0], [1.0])])
        with pytest.raises(ValueError):
            SweepPlanner(deal_session.model, space, goal="target")
        with pytest.raises(ValueError):
            SweepPlanner(deal_session.model, space, top_k=0)

    def test_empty_space_after_pruning_rejected(self, deal_session):
        space = ScenarioSpace(
            [Axis.values(deal_session.drivers[0], [50.0])],
            constraints=[BudgetConstraint.of(1.0)],
        )
        with pytest.raises(ValueError, match="empty"):
            run_sweep(deal_session.model, space)

    def test_checkpoint_reports_monotone_progress(self, deal_session):
        space = ScenarioSpace(
            [Axis.span(d, -30.0, 30.0, 3) for d in deal_session.drivers[:2]]
        )
        fractions: list[float] = []
        run_sweep(deal_session.model, space, checkpoint=fractions.append)
        assert fractions, "checkpoint was never called"
        assert fractions == sorted(fractions)
        assert fractions[-1] <= 1.0

    def test_auto_records_into_scenario_ledger(self, deal_session):
        before = len(deal_session.scenarios)
        space = ScenarioSpace([Axis.values(deal_session.drivers[0], [10.0])])
        result = deal_session.sweep(space, track_as="one-dial sweep")
        assert len(deal_session.scenarios) == before + 1
        recorded = deal_session.scenarios.list()[-1]
        assert recorded.kind == "sweep"
        assert recorded.name == "one-dial sweep"
        assert recorded.kpi_value == result.best_kpi
