"""Shared fixtures for the test suite.

Small seeded datasets and pre-built sessions keep the what-if tests fast while
still exercising the full model-training code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KPI, ModelManager, WhatIfSession
from repro.datasets import load_customer_retention, load_deal_closing, load_marketing_mix
from repro.frame import Column, DataFrame


@pytest.fixture(scope="session")
def deal_frame() -> DataFrame:
    """A small deal-closing dataset (400 prospects)."""
    return load_deal_closing(n_prospects=400, random_state=7)


@pytest.fixture(scope="session")
def marketing_frame() -> DataFrame:
    """A small marketing-mix panel (120 days)."""
    return load_marketing_mix(n_days=120, random_state=11)


@pytest.fixture(scope="session")
def retention_frame() -> DataFrame:
    """A small customer-retention dataset (400 customers)."""
    return load_customer_retention(n_customers=400, random_state=23)


@pytest.fixture(scope="session")
def deal_session(deal_frame) -> WhatIfSession:
    """A ready deal-closing session (discrete KPI, random forest)."""
    drivers = [c for c in deal_frame.numeric_columns() if c != "Deal Closed?"]
    return WhatIfSession(deal_frame, "Deal Closed?", drivers=drivers, random_state=0)


@pytest.fixture(scope="session")
def marketing_session(marketing_frame) -> WhatIfSession:
    """A ready marketing-mix session (continuous KPI, linear regression)."""
    drivers = ["Internet", "Facebook", "YouTube", "TV", "Radio"]
    return WhatIfSession(marketing_frame, "Sales", drivers=drivers, random_state=0)


@pytest.fixture(scope="session")
def deal_manager(deal_session) -> ModelManager:
    """The fitted model manager behind the deal-closing session."""
    return deal_session.model


@pytest.fixture()
def tiny_frame() -> DataFrame:
    """A 6-row hand-written frame used by the frame-layer unit tests."""
    return DataFrame(
        {
            "region": Column(
                "region",
                ["east", "west", "east", "west", "east", "west"],
                dtype="string",
            ),
            "spend": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            "clicks": [1, 2, 3, 4, 5, 6],
            "converted": [False, False, True, True, True, True],
        }
    )


@pytest.fixture()
def linear_data() -> tuple[np.ndarray, np.ndarray]:
    """A noiseless linear regression problem: y = 3 + 2*x0 - 1.5*x1."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 2))
    y = 3.0 + 2.0 * X[:, 0] - 1.5 * X[:, 1]
    return X, y


@pytest.fixture()
def classification_data() -> tuple[np.ndarray, np.ndarray]:
    """A separable-ish binary classification problem."""
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 3))
    logits = 1.5 * X[:, 0] - 2.0 * X[:, 1] + 0.5 * rng.normal(size=300)
    y = (logits > 0).astype(float)
    return X, y
