"""Good fixture protocol module.

Documented actions:

==========  =====================
action      purpose
==========  =====================
``alpha``   session-scoped action
``beta``    server-scoped action
==========  =====================

Routes:

=========================  ==============
route                      action
=========================  ==============
``GET /api/v1/sessions``   ``alpha``
=========================  ==============
"""

API_VERSION = "1"

ACTIONS = (
    "alpha",
    "beta",
)


class Response:
    def __init__(self, ok):
        self.ok = ok

    def to_dict(self):
        return {"ok": self.ok, "api_version": API_VERSION}
