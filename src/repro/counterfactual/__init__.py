"""Counterfactual explanations: per-row goal inversion phrased as a DiCE-style
diverse counterfactual search (paper §6, model-understanding related work)."""

from .dice import Counterfactual, CounterfactualResult, generate_counterfactuals

__all__ = ["Counterfactual", "CounterfactualResult", "generate_counterfactuals"]
