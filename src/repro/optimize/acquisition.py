"""Acquisition functions for Bayesian optimisation.

Given the GP posterior over the (minimised) objective, an acquisition function
scores candidate points by how promising they are to evaluate next.  We
provide the three standard choices; ``expected_improvement`` is the default
used by goal inversion.
All functions follow the *minimisation* convention (smaller objective is
better) and return scores where larger is better (more worth evaluating).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["expected_improvement", "probability_of_improvement", "lower_confidence_bound"]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best_observed: float, *, xi: float = 0.01
) -> np.ndarray:
    """Expected improvement over the incumbent ``best_observed``.

    Parameters
    ----------
    mean, std:
        GP posterior mean and standard deviation at the candidate points.
    best_observed:
        Best (lowest) objective value seen so far.
    xi:
        Exploration margin; larger values favour exploration.
    """
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    std = np.maximum(std, 1e-12)
    improvement = best_observed - mean - xi
    z = improvement / std
    ei = improvement * scipy_stats.norm.cdf(z) + std * scipy_stats.norm.pdf(z)
    return np.maximum(ei, 0.0)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best_observed: float, *, xi: float = 0.01
) -> np.ndarray:
    """Probability that a candidate improves on the incumbent."""
    mean = np.asarray(mean, dtype=np.float64)
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    z = (best_observed - mean - xi) / std
    return scipy_stats.norm.cdf(z)


def lower_confidence_bound(
    mean: np.ndarray, std: np.ndarray, best_observed: float | None = None, *, kappa: float = 1.96
) -> np.ndarray:
    """Negated lower confidence bound (``-(mean - kappa * std)``).

    ``best_observed`` is accepted (and ignored) so all three acquisition
    functions share a call signature.
    """
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    return -(mean - kappa * std)
