"""Bench-regression gate: compare fresh BENCH_*.json files against baselines.

The repo's benchmark trajectory (tree kernels, frame kernels, async engine,
scenario sweeps) is only worth anything if it cannot silently regress.  This
comparator runs in CI right after the ``bench`` job produces fresh
``BENCH_*.json`` files and fails the build when either of two things drifted
from the committed snapshots in ``benchmarks/baselines/``:

* **speedup regressions** — every metric named in :data:`RATIO_METRICS` is a
  *ratio* (batched vs looped, kernel vs recursive, parallel vs serial).
  Ratios compare the same workload on the same machine, so they transfer
  across hardware far better than raw seconds; a fresh value more than
  :data:`TOLERANCE` (25%) below its baseline fails the gate.
* **equality-check changes** — every metric named in
  :data:`EQUALITY_METRICS` is a correctness invariant (bitwise equality with
  a reference path, coalescing behaviour).  Any change at all fails the
  gate: a benchmark that stops being bitwise-identical is a correctness bug
  no matter how fast it got.

Metrics are addressed by dotted paths into the JSON.  A baseline file with
no fresh counterpart fails (a benchmark silently dropped is a regression
too), and a fresh file with no committed baseline *also* fails: a benchmark
that lands without a baseline is silently unguarded, so landing a bench and
committing its baseline (plus manifest entries here) are one change.

Ratios only transfer across machines when baseline and fresh run measured
the same *configuration*: a thread-pool ``worker_speedup`` captured on a
4-core runner says nothing about a 1-core sandbox, and vice versa.  Files
named in :data:`CONTEXT_KEYS` therefore carry their capture context
(executor kind, worker count, usable CPUs); when any of those keys differ
between baseline and fresh run the ratio metrics are *skipped* (reported as
``[SKIP]``) instead of failing on an apples-to-oranges comparison.  Equality
metrics are never skipped — correctness invariants hold on any hardware.

Usage::

    python benchmarks/check_regression.py \
        [--baseline-dir benchmarks/baselines] [--current-dir .]

Exit code 0 when every check passes, 1 otherwise, with a per-metric report
either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fractional slowdown tolerated on ratio metrics before the gate fails.
TOLERANCE = 0.25

#: Higher-is-better ratio metrics per bench file (dotted JSON paths).
RATIO_METRICS: dict[str, list[str]] = {
    "BENCH_tree_kernels.json": ["speedup"],
    "BENCH_frame_ops.json": ["groupby_agg.speedup", "inner_join.speedup"],
    "BENCH_engine.json": ["speedup", "worker_speedup"],
    "BENCH_engine_process.json": ["speedup", "worker_speedup"],
    "BENCH_scenario_sweep.json": ["speedup"],
}

#: Exact-match correctness metrics per bench file (dotted JSON paths).
EQUALITY_METRICS: dict[str, list[str]] = {
    "BENCH_tree_kernels.json": ["bitwise_identical"],
    "BENCH_engine.json": [
        "bitwise_equal",
        "coalescing.distinct_jobs",
        "coalescing.result_matches_sync",
    ],
    "BENCH_engine_process.json": [
        "bitwise_equal",
        "coalescing.distinct_jobs",
        "coalescing.result_matches_sync",
    ],
    "BENCH_scenario_sweep.json": ["bitwise_equal", "grid_kernel"],
    # streaming gates on correctness only: wall-clock latency on shared
    # runners is too noisy to ratio-compare, but the streamed result must
    # stay bitwise-identical to the polled one and the stream must keep
    # delivering at least one incremental chunk before the job finishes
    "BENCH_streaming.json": ["streamed_equals_polled", "chunk_before_done"],
    # observability gates on correctness only: the raw millisecond arms are
    # wall-clock noise on shared runners, but instrumentation must stay
    # result-neutral and inside its latency budget
    "BENCH_obs_overhead.json": ["bitwise_identical", "overhead_ok"],
    # durable state gates on correctness only: raw jobs-per-second is
    # machine-bound, but the sqlite backend must stay inside its 10%
    # throughput-overhead budget and a journaled ledger must replay bitwise
    "BENCH_persistence.json": ["overhead_ok", "replay_bitwise", "replay_events"],
}

#: Capture-context keys per bench file: when any of these differ between the
#: baseline and the fresh run, the file's *ratio* metrics are skipped rather
#: than compared (a key absent from both sides counts as matching).
CONTEXT_KEYS: dict[str, list[str]] = {
    "BENCH_engine.json": ["executor", "workers", "cpu_count"],
    "BENCH_engine_process.json": ["executor", "workers", "cpu_count"],
}


def lookup(payload: dict, path: str):
    """Resolve a dotted path into nested dicts (KeyError when absent)."""
    value = payload
    for part in path.split("."):
        value = value[part]
    return value


def context_mismatches(name: str, baseline: dict, current: dict) -> list[str]:
    """Context keys whose values differ between baseline and fresh run.

    A key missing from *both* payloads matches (older snapshots predate the
    context keys); a key present on only one side is a mismatch.
    """
    return [
        key
        for key in CONTEXT_KEYS.get(name, [])
        if baseline.get(key) != current.get(key)
    ]


def compare_file(name: str, baseline: dict, current: dict) -> list[str]:
    """Compare one bench file; returns failure messages (empty = pass)."""
    failures: list[str] = []
    mismatched = context_mismatches(name, baseline, current)
    if mismatched:
        detail = ", ".join(
            f"{key}: {baseline.get(key)!r} -> {current.get(key)!r}"
            for key in mismatched
        )
        for path in RATIO_METRICS.get(name, []):
            print(f"  [SKIP] {name}:{path}: capture context differs ({detail})")
    for path in [] if mismatched else RATIO_METRICS.get(name, []):
        try:
            base_value = float(lookup(baseline, path))
            new_value = float(lookup(current, path))
        except KeyError as exc:
            failures.append(f"{name}:{path}: missing key {exc}")
            continue
        floor = base_value * (1.0 - TOLERANCE)
        status = "OK" if new_value >= floor else "FAIL"
        print(
            f"  [{status}] {name}:{path}: {new_value:.2f} vs baseline "
            f"{base_value:.2f} (floor {floor:.2f})"
        )
        if new_value < floor:
            failures.append(
                f"{name}:{path}: {new_value:.2f} is more than {TOLERANCE:.0%} "
                f"below the baseline {base_value:.2f}"
            )
    for path in EQUALITY_METRICS.get(name, []):
        try:
            base_value = lookup(baseline, path)
            new_value = lookup(current, path)
        except KeyError as exc:
            failures.append(f"{name}:{path}: missing key {exc}")
            continue
        status = "OK" if new_value == base_value else "FAIL"
        print(f"  [{status}] {name}:{path}: {new_value!r} (baseline {base_value!r})")
        if new_value != base_value:
            failures.append(
                f"{name}:{path}: equality check changed from {base_value!r} "
                f"to {new_value!r}"
            )
    return failures


def run(baseline_dir: Path, current_dir: Path) -> int:
    """Compare every baseline against its fresh counterpart; 0 = all pass."""
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines found in {baseline_dir}", file=sys.stderr)
        return 1
    failures: list[str] = []
    for baseline_path in baselines:
        name = baseline_path.name
        current_path = current_dir / name
        print(f"{name}:")
        if not current_path.exists():
            failures.append(f"{name}: fresh result missing (did the bench run?)")
            print(f"  [FAIL] fresh result not found at {current_path}")
            continue
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(current_path, encoding="utf-8") as handle:
            current = json.load(handle)
        failures.extend(compare_file(name, baseline, current))
    known = {path.name for path in baselines}
    for current_path in sorted(current_dir.glob("BENCH_*.json")):
        if current_path.name not in known:
            name = current_path.name
            print(f"{name}: [FAIL] no baseline committed")
            failures.append(
                f"{name}: fresh benchmark has no committed baseline — copy it to "
                f"{baseline_dir}/{name} and register its metrics in RATIO_METRICS/"
                "EQUALITY_METRICS in benchmarks/check_regression.py so it is gated "
                "from day one"
            )
    if failures:
        print(f"\nbench-regression gate FAILED ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench-regression gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path(__file__).parent / "baselines",
        help="directory holding the committed BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced BENCH_*.json files",
    )
    args = parser.parse_args(argv)
    return run(args.baseline_dir, args.current_dir)


if __name__ == "__main__":
    raise SystemExit(main())
