"""A4 (ablation): interpretability vs accuracy of candidate KPI models (paper §5).

"Some models are simpler and easier to interpret while others are more
accurate but difficult to explain. It is essential that we study which models
to pick for our business users."  This ablation runs that study on the two
model-family decisions the paper hard-codes (linear regression for continuous
KPIs, random forest for discrete KPIs) and reports the cross-validated
accuracy / interpretability menu plus the model the trade-off rule would pick.
"""

from __future__ import annotations

from .conftest import print_table


def test_model_choice_ablation(benchmark, deal_session, marketing_session):
    def compare():
        return {
            "deal_closing (discrete KPI)": deal_session.compare_models(cv_folds=3),
            "marketing_mix (continuous KPI)": marketing_session.compare_models(cv_folds=3),
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)

    rows = []
    for label, comparison in results.items():
        for candidate in comparison.candidates:
            rows.append(
                {
                    "use_case": label,
                    "model": candidate.name,
                    "cv_score": candidate.accuracy,
                    "interpretability": candidate.interpretability,
                }
            )
    print_table("A4: interpretability vs accuracy menu", rows)
    for label, comparison in results.items():
        print(
            f"{label}: most accurate = {comparison.most_accurate().name}, "
            f"recommended (within 5% of best) = {comparison.recommended().name}"
        )

    benchmark.extra_info["recommended"] = {
        label: comparison.recommended().name for label, comparison in results.items()
    }

    deal = results["deal_closing (discrete KPI)"]
    marketing = results["marketing_mix (continuous KPI)"]
    # shape checks: every candidate learns the planted signal; on the (nearly)
    # linear marketing problem the interpretable linear family is competitive,
    # which is exactly the §5 trade-off the paper wants surfaced to users
    assert all(c.accuracy > 0.5 for c in deal.candidates)
    by_name = {c.name: c for c in marketing.candidates}
    assert by_name["linear_regression"].accuracy >= by_name["random_forest"].accuracy - 0.2
    assert deal.recommended().interpretability >= deal.most_accurate().interpretability
