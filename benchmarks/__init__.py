"""Benchmark harness package.

The benchmark modules import shared helpers with ``from .conftest import
print_table``, which requires ``benchmarks`` to be a real package so pytest
collects the tree with a known parent package.
"""
