"""The what-if engine: SystemD's four functionalities and the session façade.

* :class:`~repro.core.session.WhatIfSession` — the public entry point.
* :class:`~repro.core.kpi.KPI`, :class:`~repro.core.perturbation.Perturbation`,
  :class:`~repro.core.perturbation.PerturbationSet` — the analysis vocabulary.
* :mod:`~repro.core.driver_importance`, :mod:`~repro.core.sensitivity`,
  :mod:`~repro.core.goal_inversion`, :mod:`~repro.core.constrained` — the four
  functionalities as standalone functions over a
  :class:`~repro.core.model_manager.ModelManager`.
"""

from .cache import ModelCache, frame_fingerprint, model_fingerprint
from .cohort import CohortAnalysis, CohortResult
from .constrained import DriverBound, budget_constraint, run_constrained_analysis
from .driver_importance import compute_driver_importance
from .model_comparison import ModelCandidate, ModelComparisonResult, compare_models
from .goal_inversion import DEFAULT_PERTURBATION_RANGE, GOALS, invert_goal
from .kpi import KPI, infer_kpi_kind
from .model_manager import ModelManager
from .perturbation import PERTURBATION_MODES, Perturbation, PerturbationSet
from .results import (
    ComparisonPoint,
    ComparisonResult,
    DriverImportance,
    GoalInversionResult,
    ImportanceResult,
    PerDataResult,
    SensitivityResult,
)
from .scenario import SCENARIO_KINDS, Scenario, ScenarioError, ScenarioManager
from .sensitivity import run_comparison, run_per_data, run_sensitivity
from .session import WhatIfSession

__all__ = [
    "WhatIfSession",
    "ModelCache",
    "frame_fingerprint",
    "model_fingerprint",
    "CohortAnalysis",
    "CohortResult",
    "ModelCandidate",
    "ModelComparisonResult",
    "compare_models",
    "KPI",
    "infer_kpi_kind",
    "ModelManager",
    "Perturbation",
    "PerturbationSet",
    "PERTURBATION_MODES",
    "DriverBound",
    "budget_constraint",
    "compute_driver_importance",
    "run_sensitivity",
    "run_comparison",
    "run_per_data",
    "invert_goal",
    "run_constrained_analysis",
    "GOALS",
    "DEFAULT_PERTURBATION_RANGE",
    "Scenario",
    "ScenarioError",
    "ScenarioManager",
    "SCENARIO_KINDS",
    "DriverImportance",
    "ImportanceResult",
    "SensitivityResult",
    "ComparisonPoint",
    "ComparisonResult",
    "PerDataResult",
    "GoalInversionResult",
]
