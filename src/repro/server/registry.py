"""Thread-safe session registry: many concurrent, id-addressed analyses.

The seed backend held exactly one :class:`~repro.server.handlers.ServerState`
("the current analysis"), so a second user's ``load_use_case`` clobbered the
first.  :class:`SessionRegistry` replaces that with an id-addressed map of
sessions sharing one :class:`~repro.core.cache.ModelCache`:

* ``create`` / ``get`` / ``list_sessions`` / ``close`` — the lifecycle API the
  server actions (``create_session`` etc.) delegate to;
* LRU eviction beyond a capacity cap, and TTL eviction of sessions idle for
  longer than ``ttl_seconds``, so abandoned browser tabs cannot pin memory;
* a per-session :class:`threading.Lock` (``entry.lock``) the dispatcher holds
  while running a handler, serialising requests *within* a session while
  requests across sessions proceed in parallel.

The reserved id :data:`DEFAULT_SESSION_ID` backs requests that carry no
``session_id`` — the backward-compatible single-analysis behaviour.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..persist import MemoryBackend, StateBackend
from .handlers import ServerState

__all__ = ["SessionEntry", "SessionRegistry", "UnknownSessionError", "DEFAULT_SESSION_ID"]

#: Session id used when a request does not specify one.
DEFAULT_SESSION_ID = "default"


class UnknownSessionError(KeyError):
    """Raised when a session id is not (or no longer) registered."""


@dataclass
class SessionEntry:
    """One registered session: its state, lock, and bookkeeping timestamps.

    ``created_at`` / ``last_used_at`` are monotonic (age/idle arithmetic);
    ``created_wall`` is the wall-clock creation instant, which is what
    survives restarts and orders session listings stably.
    """

    session_id: str
    state: ServerState
    created_at: float
    last_used_at: float
    lock: threading.Lock = field(default_factory=threading.Lock)
    request_count: int = 0
    share_id: str = ""
    created_wall: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (timestamps as idle/age seconds are the
        registry's job, since only it knows the clock)."""
        return {
            "session_id": self.session_id,
            "share_id": self.share_id,
            "use_case": self.state.use_case_key,
            "loaded": self.state.session is not None,
            "request_count": self.request_count,
        }


class SessionRegistry:
    """Bounded, thread-safe map from session id to :class:`SessionEntry`.

    Parameters
    ----------
    capacity:
        Maximum number of live sessions; creating one more evicts the least
        recently used session.
    ttl_seconds:
        Sessions idle for longer than this are evicted lazily (on any
        create/get/list/stats call).  ``None`` disables TTL eviction.
    pinned:
        Session ids exempt from TTL and LRU eviction (and not counted
        against ``capacity``).  Defaults to the default session, so seed-style
        clients that never send a ``session_id`` keep their analysis for the
        life of the process.
    clock:
        Monotonic time source, injectable for tests.
    backend:
        Durable-state backend session records are journaled to.  Defaults
        to a private :class:`~repro.persist.MemoryBackend`, which preserves
        the pre-persistence behaviour exactly; a durable backend
        additionally keeps records of evicted sessions so they recover
        lazily (:meth:`get` rebuilds the analysis from its journaled load
        parameters and replays the scenario ledger) or eagerly via
        :meth:`recover_all`.
    """

    #: Attributes whose mutations must flow through a persistence hook —
    #: the PER001 check rule enforces this contract statically.
    _PERSISTED_FIELDS = ("_entries",)

    def __init__(
        self,
        *,
        capacity: int = 64,
        ttl_seconds: float | None = 3600.0,
        pinned: tuple[str, ...] = (DEFAULT_SESSION_ID,),
        clock: Callable[[], float] = time.monotonic,
        backend: StateBackend | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.pinned = frozenset(pinned)
        self._clock = clock
        self.backend = backend if backend is not None else MemoryBackend()
        #: Shared model cache injected by the server; recovery threads it
        #: into rebuilt sessions so refits hit the fingerprint-keyed cache.
        self.model_cache = None
        self._entries: OrderedDict[str, SessionEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._created_total = 0
        self._closed_total = 0
        self._evicted_lru = 0
        self._evicted_ttl = 0
        self._recovered_total = 0

    # ------------------------------------------------------------------ #
    # persistence plumbing
    # ------------------------------------------------------------------ #
    def _entry_record(self, entry: SessionEntry) -> dict[str, Any]:
        """The durable session record: identity, share id, and the load
        parameters needed to rebuild the analysis after a restart."""
        state = entry.state
        return {
            "session_id": entry.session_id,
            "share_id": entry.share_id,
            "use_case": state.use_case_key,
            "dataset_kwargs": state.options.get("dataset_kwargs", {}),
            "random_state": state.options.get("random_state", 0),
            "created_at": entry.created_wall,
            "last_used_at": time.time(),
        }

    def _bind_persistence(self, entry: SessionEntry) -> None:
        """Give the entry's state a persist hook and journal its ledger.

        ``handle_load_use_case`` calls the hook after swapping in a fresh
        :class:`~repro.core.WhatIfSession`; the hook journals the new load
        parameters, drops the now-stale ledger journal, and binds the fresh
        scenario manager to the backend.
        """
        backend = self.backend
        sid = entry.session_id

        def persist_load(state: ServerState) -> None:
            with backend.transaction():
                backend.clear_scenarios(sid)
                backend.save_session(self._entry_record(entry))
            if state.session is not None:
                state.session.scenarios.bind_backend(backend, sid)

        entry.state.persist_hook = persist_load

    def _install_locked(
        self,
        sid: str,
        *,
        share_id: str,
        created_wall: float,
        persist_record: bool,
    ) -> SessionEntry:
        """Insert a fresh entry (caller holds the lock), journaling it and
        evicting over-capacity LRU sessions."""
        now = self._clock()
        entry = SessionEntry(
            session_id=sid,
            state=ServerState(),
            created_at=now,
            last_used_at=now,
            share_id=share_id,
            created_wall=created_wall,
        )
        entry.state.model_cache = self.model_cache
        self._bind_persistence(entry)
        if persist_record:
            self.backend.save_session(self._entry_record(entry))
        self._entries[sid] = entry
        while self._unpinned_count() > self.capacity:
            lru_id = next(eid for eid in self._entries if eid not in self.pinned)
            self._evict_entry(lru_id)
            self._evicted_lru += 1
        return entry

    def _evict_entry(self, sid: str) -> None:
        """Drop one in-memory entry.  The durable record stays behind for
        lazy recovery; a non-durable backend's record dies with the entry
        (the process is the store, so there is nothing to recover into)."""
        del self._entries[sid]
        if not self.backend.durable:
            self.backend.delete_session(sid)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def create(self, session_id: str | None = None) -> SessionEntry:
        """Register a new session and return its entry.

        A fresh uuid-based id is generated unless ``session_id`` is given;
        reusing a live (or durably recorded) id raises :class:`ValueError`.
        Every session is minted a read-only ``share_id`` resolvable through
        :meth:`find_share`.
        """
        with self._lock:
            self._evict_expired()
            sid = session_id or f"s-{uuid.uuid4().hex[:12]}"
            if sid in self._entries or self.backend.load_session(sid) is not None:
                raise ValueError(f"session {sid!r} already exists")
            entry = self._install_locked(
                sid,
                share_id=f"sh-{uuid.uuid4().hex[:12]}",
                created_wall=time.time(),
                persist_record=True,
            )
            self._created_total += 1
            return entry

    def _unpinned_count(self) -> int:
        return sum(1 for sid in self._entries if sid not in self.pinned)

    def get(self, session_id: str) -> SessionEntry:
        """Return a live session entry, refreshing its LRU position and
        last-used timestamp; unknown or expired ids raise
        :class:`UnknownSessionError`.

        A session that is not live but has a durable record is recovered
        transparently: the analysis rebuilds from its journaled load
        parameters (model refits hit the fingerprint-keyed cache) and the
        scenario ledger replays from the journal.
        """
        with self._lock:
            self._evict_expired()
            entry = self._entries.get(session_id)
            if entry is None:
                entry = self._recover_locked(session_id)
            if entry is None:
                raise UnknownSessionError(session_id)
            entry.last_used_at = self._clock()
            self._entries.move_to_end(session_id)  # LRU refresh, not a mutation
            return entry

    def _recover_locked(self, session_id: str) -> SessionEntry | None:
        """Rebuild a session from its durable record (caller holds the lock).

        Returns ``None`` when the backend has no record.  The rebuild runs
        under the registry lock — recovery is rare (first touch after a
        restart or eviction) and correctness beats concurrency here.
        """
        record = self.backend.load_session(session_id)
        if record is None:
            return None
        entry = self._install_locked(
            session_id,
            share_id=str(record.get("share_id") or ""),
            created_wall=float(record.get("created_at") or 0.0),
            persist_record=False,
        )
        use_case = record.get("use_case")
        if use_case:
            from ..core import WhatIfSession

            state = entry.state
            state.session = WhatIfSession.from_use_case(
                use_case,
                dataset_kwargs=record.get("dataset_kwargs") or {},
                random_state=record.get("random_state", 0),
                model_cache=state.model_cache,
            )
            state.use_case_key = use_case
            state.options["dataset_kwargs"] = record.get("dataset_kwargs") or {}
            state.options["random_state"] = record.get("random_state", 0)
            manager = state.session.scenarios
            manager.replay(self.backend.load_scenarios(session_id))
            manager.bind_backend(self.backend, session_id)
        self._recovered_total += 1
        return entry

    def recover_all(self) -> list[str]:
        """Eagerly recover every dormant durable session (``--recover``).

        Returns the recovered session ids, sorted.  Sessions already live
        are skipped; capacity still applies, so recovering more sessions
        than ``capacity`` LRU-evicts back to dormant (their records stay).
        """
        recovered = []
        for record in self.backend.list_sessions():
            sid = record["session_id"]
            with self._lock:
                if sid in self._entries:
                    continue
                if self._recover_locked(sid) is not None:
                    recovered.append(sid)
        return sorted(recovered)

    def find_share(self, share_id: str) -> dict[str, Any] | None:
        """Resolve a read-only share id to a session summary, or ``None``.

        Resolution is durable-record based and does *not* recover or touch
        the session (shares are read-only views; recovery happens when the
        shared session is actually read through :meth:`get`).
        """
        record = self.backend.find_share(share_id)
        if record is None:
            return None
        sid = record["session_id"]
        with self._lock:
            entry = self._entries.get(sid)
            loaded = entry is not None and entry.state.session is not None
        return {
            "session_id": sid,
            "share_id": record.get("share_id", ""),
            "use_case": record.get("use_case", ""),
            "created_at": record.get("created_at", 0.0),
            "loaded": loaded,
        }

    def get_or_create(self, session_id: str) -> SessionEntry:
        """Like :meth:`get`, but registers the session if absent (used for
        the default session, which materialises lazily)."""
        with self._lock:
            try:
                return self.get(session_id)
            except UnknownSessionError:
                return self.create(session_id)

    def close(self, session_id: str) -> SessionEntry:
        """Unregister a session, returning its final entry.

        Closing is the one lifecycle step that *removes* the durable record
        (and its ledger/versions): unlike eviction, close is an explicit
        "this analysis is over".  A dormant session — durable record, no
        live entry — closes without being recovered first.
        """
        with self._lock:
            entry = self._entries.pop(session_id, None)
            if entry is None:
                record = self.backend.load_session(session_id)
                if record is None:
                    raise UnknownSessionError(session_id)
                # synthesise a final entry for the response payload; the
                # analysis itself was never rebuilt, so state stays empty
                now = self._clock()
                entry = SessionEntry(
                    session_id=session_id,
                    state=ServerState(),
                    created_at=now,
                    last_used_at=now,
                    share_id=str(record.get("share_id") or ""),
                    created_wall=float(record.get("created_at") or 0.0),
                )
                entry.state.use_case_key = str(record.get("use_case") or "")
            self.backend.delete_session(session_id)
            self._closed_total += 1
            return entry

    def list_sessions(self) -> list[dict[str, Any]]:
        """JSON-safe summaries of every session, live and dormant.

        Live entries report in-process counters (request count, age/idle
        from the monotonic clock); dormant durable records — sessions that
        survived a restart or an eviction but have not been touched yet —
        report ``loaded: false`` and ``dormant: true``.  Ordering is stable
        across processes: ``(created_at, session_id)`` on the wall clock.
        """
        with self._lock:
            self._evict_expired()
            now = self._clock()
            wall_now = time.time()
            rows: dict[str, dict[str, Any]] = {}
            for record in self.backend.list_sessions():
                sid = record["session_id"]
                created = float(record.get("created_at") or 0.0)
                last_used = float(record.get("last_used_at") or created)
                rows[sid] = {
                    "session_id": sid,
                    "share_id": record.get("share_id", ""),
                    "use_case": record.get("use_case", ""),
                    "loaded": False,
                    "request_count": 0,
                    "age_seconds": max(0.0, wall_now - created),
                    "idle_seconds": max(0.0, wall_now - last_used),
                    "created_at": created,
                    "dormant": True,
                }
            for entry in self._entries.values():
                rows[entry.session_id] = {
                    **entry.to_dict(),
                    "age_seconds": now - entry.created_at,
                    "idle_seconds": now - entry.last_used_at,
                    "created_at": entry.created_wall,
                    "dormant": False,
                }
            return sorted(
                rows.values(), key=lambda r: (r["created_at"], r["session_id"])
            )

    # ------------------------------------------------------------------ #
    def _evict_expired(self) -> None:
        if self.ttl_seconds is None:
            return
        now = self._clock()
        expired = [
            sid
            for sid, entry in self._entries.items()
            if sid not in self.pinned and now - entry.last_used_at > self.ttl_seconds
        ]
        for sid in expired:
            self._evict_entry(sid)
            self._evicted_ttl += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._entries

    def stats(self) -> dict[str, Any]:
        """Registry-level counters for the ``server_stats`` action."""
        with self._lock:
            self._evict_expired()
            return {
                "live_sessions": len(self._entries),
                "capacity": self.capacity,
                "ttl_seconds": self.ttl_seconds,
                "created_total": self._created_total,
                "closed_total": self._closed_total,
                "evicted_lru": self._evicted_lru,
                "evicted_ttl": self._evicted_ttl,
                "recovered_total": self._recovered_total,
                "backend": self.backend.stats(),
            }
