"""Unit tests for preprocessing transformers and pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    LabelEncoder,
    LinearRegression,
    LogisticRegression,
    MinMaxScaler,
    NotFittedError,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 3))
        scaled = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_transform_round_trip(self):
        X = np.random.default_rng(1).normal(size=(50, 2))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12)

    def test_constant_feature_not_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        scaled = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_without_mean_or_std(self):
        X = np.array([[1.0], [3.0]])
        no_mean = StandardScaler(with_mean=False).fit_transform(X)
        assert no_mean.min() > 0  # values not centred
        no_std = StandardScaler(with_std=False).fit_transform(X)
        np.testing.assert_allclose(no_std.ravel(), [-1.0, 1.0])


class TestMinMaxScaler:
    def test_default_range(self):
        X = np.array([[0.0], [5.0], [10.0]])
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() == 0.0 and scaled.max() == 1.0

    def test_custom_range(self):
        X = np.array([[0.0], [10.0]])
        scaled = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        np.testing.assert_allclose(scaled.ravel(), [-1.0, 1.0])

    def test_inverse_round_trip(self):
        X = np.random.default_rng(2).uniform(size=(30, 3)) * 100
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_constant_feature(self):
        X = np.full((5, 1), 3.0)
        assert np.all(np.isfinite(MinMaxScaler().fit_transform(X)))


class TestEncoders:
    def test_label_encoder_round_trip(self):
        values = ["red", "blue", "red", "green"]
        encoder = LabelEncoder().fit(values)
        codes = encoder.transform(values)
        assert sorted(set(codes.tolist())) == [0, 1, 2]
        assert encoder.inverse_transform(codes) == values

    def test_label_encoder_unseen_label(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.transform(["c"])

    def test_label_encoder_not_fitted(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])

    def test_one_hot_shapes_and_names(self):
        values = ["tv", "radio", "tv", "internet"]
        encoder = OneHotEncoder().fit(values)
        matrix = encoder.transform(values)
        assert matrix.shape == (4, 3)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)
        assert encoder.feature_names("channel") == [
            "channel=internet",
            "channel=radio",
            "channel=tv",
        ]

    def test_one_hot_drop_first(self):
        encoder = OneHotEncoder(drop_first=True).fit(["a", "b", "c"])
        assert encoder.transform(["a"]).shape == (1, 2)

    def test_one_hot_unseen_category(self):
        encoder = OneHotEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.transform(["z"])


class TestPipeline:
    def test_scaled_regression_matches_unscaled_predictions(self, linear_data):
        X, y = linear_data
        pipeline = Pipeline([("scale", StandardScaler()), ("model", LinearRegression())]).fit(X, y)
        plain = LinearRegression().fit(X, y)
        np.testing.assert_allclose(pipeline.predict(X), plain.predict(X), atol=1e-8)

    def test_predict_proba_passthrough(self, classification_data):
        X, y = classification_data
        pipeline = Pipeline(
            [("scale", StandardScaler()), ("model", LogisticRegression())]
        ).fit(X, y)
        proba = pipeline.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_score_delegates(self, linear_data):
        X, y = linear_data
        pipeline = Pipeline([("scale", StandardScaler()), ("model", LinearRegression())]).fit(X, y)
        assert pipeline.score(X, y) == pytest.approx(1.0)

    def test_named_steps_and_final_estimator(self):
        pipeline = Pipeline([("scale", StandardScaler()), ("model", LinearRegression())])
        assert "scale" in pipeline.named_steps
        assert isinstance(pipeline.final_estimator, LinearRegression)

    def test_unique_step_names_required(self):
        with pytest.raises(ValueError):
            Pipeline([("a", StandardScaler()), ("a", LinearRegression())])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_clone_unfitted_produces_independent_copy(self, linear_data):
        X, y = linear_data
        pipeline = Pipeline([("scale", StandardScaler()), ("model", LinearRegression())]).fit(X, y)
        fresh = pipeline.clone_unfitted()
        assert fresh.final_estimator.coef_ is None
        assert pipeline.final_estimator.coef_ is not None

    def test_coef_property(self, linear_data):
        X, y = linear_data
        pipeline = Pipeline([("scale", StandardScaler()), ("model", LinearRegression())]).fit(X, y)
        assert pipeline.coef_.shape == (2,)
