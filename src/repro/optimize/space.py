"""Search-space definitions for the optimizer substrate.

Goal inversion searches over *perturbation magnitudes* of each driver (e.g.
"change Open Marketing Email by somewhere between +40% and +80%"), so the
search space is a box of real (or integer) dimensions, optionally with a few
categorical switches.  This module mirrors the small part of
``skopt.space`` that gp_minimize needs: named dimensions, uniform sampling,
and transforms to/from the unit hypercube the Gaussian process operates in.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = ["Dimension", "Real", "Integer", "Categorical", "Space"]


class Dimension:
    """Base class for a single search dimension."""

    name: str

    def sample(self, rng: np.random.Generator, n: int) -> list[Any]:
        """Draw ``n`` values uniformly from the dimension."""
        raise NotImplementedError

    def to_unit(self, value: Any) -> float:
        """Map a value into [0, 1] for the GP."""
        raise NotImplementedError

    def from_unit(self, unit: float) -> Any:
        """Map a [0, 1] coordinate back into the dimension's native scale."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies inside the dimension."""
        raise NotImplementedError


class Real(Dimension):
    """A continuous dimension on ``[low, high]``.

    Parameters
    ----------
    low, high:
        Inclusive bounds (``low < high``).
    name:
        Dimension name (usually the driver name).
    """

    def __init__(self, low: float, high: float, name: str = "x") -> None:
        if not np.isfinite(low) or not np.isfinite(high):
            raise ValueError("bounds must be finite")
        if low >= high:
            raise ValueError(f"low ({low}) must be strictly less than high ({high})")
        self.low = float(low)
        self.high = float(high)
        self.name = name

    def sample(self, rng: np.random.Generator, n: int) -> list[float]:
        return rng.uniform(self.low, self.high, size=n).tolist()

    def to_unit(self, value: float) -> float:
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, unit: float) -> float:
        return self.low + float(np.clip(unit, 0.0, 1.0)) * (self.high - self.low)

    def contains(self, value: Any) -> bool:
        try:
            return self.low - 1e-12 <= float(value) <= self.high + 1e-12
        except (TypeError, ValueError):
            return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"Real({self.low}, {self.high}, name={self.name!r})"


class Integer(Dimension):
    """An integer dimension on ``{low, ..., high}``."""

    def __init__(self, low: int, high: int, name: str = "x") -> None:
        if low >= high:
            raise ValueError(f"low ({low}) must be strictly less than high ({high})")
        self.low = int(low)
        self.high = int(high)
        self.name = name

    def sample(self, rng: np.random.Generator, n: int) -> list[int]:
        return [int(v) for v in rng.integers(self.low, self.high + 1, size=n)]

    def to_unit(self, value: int) -> float:
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, unit: float) -> int:
        raw = self.low + float(np.clip(unit, 0.0, 1.0)) * (self.high - self.low)
        return int(np.clip(round(raw), self.low, self.high))

    def contains(self, value: Any) -> bool:
        try:
            return self.low <= int(round(float(value))) <= self.high
        except (TypeError, ValueError):
            return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"Integer({self.low}, {self.high}, name={self.name!r})"


class Categorical(Dimension):
    """A categorical dimension over an explicit list of choices."""

    def __init__(self, categories: Sequence[Any], name: str = "x") -> None:
        categories = list(categories)
        if len(categories) < 2:
            raise ValueError("a categorical dimension needs at least two choices")
        self.categories = categories
        self.name = name

    def sample(self, rng: np.random.Generator, n: int) -> list[Any]:
        indices = rng.integers(0, len(self.categories), size=n)
        return [self.categories[int(i)] for i in indices]

    def to_unit(self, value: Any) -> float:
        index = self.categories.index(value)
        return index / (len(self.categories) - 1)

    def from_unit(self, unit: float) -> Any:
        index = int(round(float(np.clip(unit, 0.0, 1.0)) * (len(self.categories) - 1)))
        return self.categories[index]

    def contains(self, value: Any) -> bool:
        return value in self.categories

    def __repr__(self) -> str:  # pragma: no cover
        return f"Categorical({self.categories!r}, name={self.name!r})"


class Space:
    """An ordered collection of dimensions.

    Provides uniform sampling, transforms to/from the unit hypercube, and
    point validation used by both the Bayesian optimizer and its baselines.
    """

    def __init__(self, dimensions: Sequence[Dimension]) -> None:
        dimensions = list(dimensions)
        if not dimensions:
            raise ValueError("a search space needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"dimension names must be unique, got {names}")
        self.dimensions = dimensions

    @property
    def n_dims(self) -> int:
        """Number of dimensions."""
        return len(self.dimensions)

    @property
    def names(self) -> list[str]:
        """Dimension names in order."""
        return [d.name for d in self.dimensions]

    def sample(self, n: int, *, random_state: int | None = None) -> list[list[Any]]:
        """Draw ``n`` points uniformly at random."""
        rng = np.random.default_rng(random_state)
        columns = [dimension.sample(rng, n) for dimension in self.dimensions]
        return [list(point) for point in zip(*columns)]

    def to_unit(self, point: Sequence[Any]) -> np.ndarray:
        """Map a point to unit-hypercube coordinates."""
        if len(point) != self.n_dims:
            raise ValueError(f"point has {len(point)} values for {self.n_dims} dimensions")
        return np.array(
            [dimension.to_unit(value) for dimension, value in zip(self.dimensions, point)]
        )

    def from_unit(self, unit_point: Sequence[float]) -> list[Any]:
        """Map unit-hypercube coordinates back to native values."""
        if len(unit_point) != self.n_dims:
            raise ValueError(
                f"unit point has {len(unit_point)} values for {self.n_dims} dimensions"
            )
        return [
            dimension.from_unit(value)
            for dimension, value in zip(self.dimensions, unit_point)
        ]

    def contains(self, point: Sequence[Any]) -> bool:
        """Whether every coordinate of ``point`` is inside its dimension."""
        if len(point) != self.n_dims:
            return False
        return all(
            dimension.contains(value)
            for dimension, value in zip(self.dimensions, point)
        )

    def clip(self, point: Sequence[Any]) -> list[Any]:
        """Project a point onto the space (clamping out-of-bound coordinates)."""
        return self.from_unit(np.clip(self.to_unit_safe(point), 0.0, 1.0))

    def to_unit_safe(self, point: Sequence[Any]) -> np.ndarray:
        """Like :meth:`to_unit` but tolerant of out-of-bound numeric values."""
        coordinates = []
        for dimension, value in zip(self.dimensions, point):
            if isinstance(dimension, Categorical):
                if dimension.contains(value):
                    coordinates.append(dimension.to_unit(value))
                else:
                    coordinates.append(0.0)
            else:
                span = dimension.high - dimension.low
                coordinates.append((float(value) - dimension.low) / span)
        return np.array(coordinates)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Space({self.dimensions!r})"
