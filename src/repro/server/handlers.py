"""Request handlers: one per backend action.

Session-scoped handlers (:data:`HANDLERS`) receive one mutable
:class:`ServerState` — the analysis the request's ``session_id`` routed to —
plus the request parameters, and return a JSON-safe payload dict.
Server-scoped handlers (:data:`SERVER_HANDLERS`) receive the
:class:`~repro.server.app.SystemDServer` itself and manage the session
registry and shared model cache.  Validation errors raise
:class:`~repro.server.protocol.ProtocolError` so the dispatcher can turn them
into error responses without crashing the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..core import DriverBound, ModelCache, PerturbationSet, WhatIfSession
from ..datasets import get_use_case, list_use_cases
from .protocol import ProtocolError
from .serialization import frame_preview, to_json_safe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import SystemDServer

__all__ = ["ServerState", "HANDLERS", "SERVER_HANDLERS"]


@dataclass
class ServerState:
    """Mutable state of one registered analysis session."""

    session: WhatIfSession | None = None
    use_case_key: str = ""
    options: dict[str, Any] = field(default_factory=dict)
    #: Shared model cache injected by the server; sessions created outside a
    #: server keep the default per-session cache.
    model_cache: ModelCache | None = None

    def require_session(self) -> WhatIfSession:
        """Return the active session or raise a protocol error."""
        if self.session is None:
            raise ProtocolError(
                "no dataset loaded; send a 'load_use_case' request first"
            )
        return self.session


# --------------------------------------------------------------------------- #
# handlers
# --------------------------------------------------------------------------- #
def handle_list_use_cases(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(A) List the registered business use cases."""
    return {
        "use_cases": [
            {
                "key": use_case.key,
                "title": use_case.title,
                "description": use_case.description,
                "kpi": use_case.kpi,
                "kpi_kind": use_case.kpi_kind,
            }
            for use_case in list_use_cases()
        ]
    }


def handle_load_use_case(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(A)+(B) Load a use case's dataset and start a session."""
    key = params.get("use_case")
    if not key:
        raise ProtocolError("'use_case' parameter is required")
    use_case = _get_use_case_or_error(key)
    dataset_kwargs = params.get("dataset_kwargs", {})
    if not isinstance(dataset_kwargs, dict):
        raise ProtocolError("'dataset_kwargs' must be an object")
    state.session = WhatIfSession.from_use_case(
        key,
        dataset_kwargs=dataset_kwargs,
        random_state=params.get("random_state", 0),
        model_cache=state.model_cache,
    )
    state.use_case_key = key
    return {
        "use_case": use_case.key,
        "kpi": use_case.kpi,
        "drivers": state.session.drivers,
        "table": frame_preview(state.session.frame, max_rows=int(params.get("max_rows", 20))),
    }


def _get_use_case_or_error(key: str):
    try:
        return get_use_case(key)
    except KeyError as exc:
        raise ProtocolError(str(exc.args[0])) from exc


def handle_describe_dataset(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(B) Table-view metadata for the loaded dataset."""
    session = state.require_session()
    return to_json_safe(session.describe_dataset())


def handle_set_kpi(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(C) Change the KPI column."""
    session = state.require_session()
    kpi = params.get("kpi")
    if not kpi:
        raise ProtocolError("'kpi' parameter is required")
    try:
        session.set_kpi(kpi)
    except (ValueError, KeyError) as exc:
        raise ProtocolError(str(exc)) from exc
    return {"kpi": session.kpi.to_dict(), "drivers": session.drivers}


def handle_set_drivers(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(D) Replace or prune the driver selection."""
    session = state.require_session()
    if "drivers" in params:
        try:
            session.select_drivers(list(params["drivers"]))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    elif "exclude" in params:
        try:
            session.exclude_drivers(list(params["exclude"]))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    else:
        raise ProtocolError("either 'drivers' or 'exclude' must be provided")
    return {"drivers": session.drivers}


def handle_driver_importance(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(E) Driver importance analysis."""
    session = state.require_session()
    result = session.driver_importance(verify=bool(params.get("verify", True)))
    return to_json_safe(result)


def _parse_perturbations(params: dict[str, Any]) -> tuple[PerturbationSet, str]:
    perturbations = params.get("perturbations")
    mode = params.get("mode", "percentage")
    if perturbations is None:
        raise ProtocolError("'perturbations' parameter is required")
    if isinstance(perturbations, dict):
        try:
            return PerturbationSet.from_mapping(
                {str(k): float(v) for k, v in perturbations.items()}, mode=mode
            ), mode
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid perturbations: {exc}") from exc
    if isinstance(perturbations, list):
        try:
            return PerturbationSet.from_list(perturbations), mode
        except (TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(f"invalid perturbations: {exc}") from exc
    raise ProtocolError("'perturbations' must be an object or a list")


def handle_sensitivity(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(F)+(G)+(H) Sensitivity analysis on the whole dataset."""
    session = state.require_session()
    perturbations, _ = _parse_perturbations(params)
    try:
        result = session.sensitivity(perturbations, track_as=params.get("track_as"))
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_comparison(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(H) Comparison analysis across drivers and perturbation magnitudes."""
    session = state.require_session()
    amounts = params.get("amounts", (-40.0, -20.0, 0.0, 20.0, 40.0))
    try:
        result = session.comparison_analysis(
            params.get("drivers"),
            [float(a) for a in amounts],
            mode=params.get("mode", "percentage"),
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_per_data(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(H) Per-data analysis of a single row."""
    session = state.require_session()
    if "row_index" not in params:
        raise ProtocolError("'row_index' parameter is required")
    perturbations, _ = _parse_perturbations(params)
    try:
        result = session.per_data_analysis(int(params["row_index"]), perturbations)
    except (ValueError, IndexError) as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_goal_inversion(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(I) Free goal inversion (maximize / minimize / target)."""
    session = state.require_session()
    try:
        result = session.goal_inversion(
            params.get("goal", "maximize"),
            target_value=params.get("target_value"),
            drivers=params.get("drivers"),
            mode=params.get("mode", "percentage"),
            n_calls=int(params.get("n_calls", 30)),
            optimizer=params.get("optimizer", "bayesian"),
            track_as=params.get("track_as"),
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_constrained(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """(G)+(I) Constrained analysis with per-driver bounds."""
    session = state.require_session()
    raw_bounds = params.get("bounds")
    if not raw_bounds:
        raise ProtocolError("'bounds' parameter is required for constrained analysis")
    try:
        if isinstance(raw_bounds, dict):
            bounds = {
                str(driver): (float(pair[0]), float(pair[1]))
                for driver, pair in raw_bounds.items()
            }
        else:
            bounds = [DriverBound.from_dict(item) for item in raw_bounds]
    except (TypeError, ValueError, KeyError, IndexError) as exc:
        raise ProtocolError(f"invalid bounds: {exc}") from exc
    try:
        result = session.constrained_analysis(
            bounds,
            goal=params.get("goal", "maximize"),
            target_value=params.get("target_value"),
            drivers=params.get("drivers"),
            mode=params.get("mode", "percentage"),
            n_calls=int(params.get("n_calls", 30)),
            optimizer=params.get("optimizer", "bayesian"),
            track_as=params.get("track_as"),
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return to_json_safe(result)


def handle_list_scenarios(state: ServerState, params: dict[str, Any]) -> dict[str, Any]:
    """List the scenarios (options) tracked so far."""
    session = state.require_session()
    return {"scenarios": to_json_safe([s.to_dict() for s in session.scenarios])}


# --------------------------------------------------------------------------- #
# server-scoped handlers: session lifecycle and observability
# --------------------------------------------------------------------------- #
def handle_create_session(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Register a new analysis session and return its id.

    Optionally forwards ``use_case`` / ``dataset_kwargs`` / ``random_state``
    to an immediate ``load_use_case`` so one round trip yields a ready
    session.
    """
    requested_id = params.get("session_id")
    try:
        entry = server.registry.create(str(requested_id) if requested_id else None)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    entry.state.model_cache = server.model_cache
    payload: dict[str, Any] = {"session_id": entry.session_id}
    if params.get("use_case"):
        try:
            with entry.lock:
                payload.update(handle_load_use_case(entry.state, params))
        except Exception:
            # don't leave an orphan session behind a failed eager load
            server.registry.close(entry.session_id)
            raise
    return payload


def handle_close_session(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Unregister a session (its trained models stay in the shared cache)."""
    from .registry import UnknownSessionError

    session_id = params.get("session_id")
    if not session_id:
        raise ProtocolError("'session_id' parameter is required")
    try:
        entry = server.registry.close(str(session_id))
    except UnknownSessionError as exc:
        raise ProtocolError(f"unknown session {session_id!r}") from exc
    return {"closed": entry.to_dict()}


def handle_list_sessions(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Summaries of every live session."""
    return {"sessions": server.registry.list_sessions()}


def handle_server_stats(server: "SystemDServer", params: dict[str, Any]) -> dict[str, Any]:
    """Registry, model-cache, and request-level counters."""
    return server.stats()


#: Dispatch table used by the server app.
HANDLERS: dict[str, Callable[[ServerState, dict[str, Any]], dict[str, Any]]] = {
    "list_use_cases": handle_list_use_cases,
    "load_use_case": handle_load_use_case,
    "describe_dataset": handle_describe_dataset,
    "set_kpi": handle_set_kpi,
    "set_drivers": handle_set_drivers,
    "driver_importance": handle_driver_importance,
    "sensitivity": handle_sensitivity,
    "comparison": handle_comparison,
    "per_data": handle_per_data,
    "goal_inversion": handle_goal_inversion,
    "constrained": handle_constrained,
    "list_scenarios": handle_list_scenarios,
}

#: Server-scoped dispatch table (session lifecycle + observability); these
#: handlers run outside any per-session lock.
SERVER_HANDLERS: dict[str, Callable[["SystemDServer", dict[str, Any]], dict[str, Any]]] = {
    "create_session": handle_create_session,
    "close_session": handle_close_session,
    "list_sessions": handle_list_sessions,
    "server_stats": handle_server_stats,
}
