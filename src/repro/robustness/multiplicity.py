"""Model-multiplicity and solution-robustness analysis (paper §5 "Robustness").

The paper warns that "the optimal solution from a given data-based model may
be brittle: under small changes to the model or data, the solution may
suddenly perform very poorly", and that multiple models explaining the data
equally well "may yield different rankings of driver importance as well as
different solutions to optimization and goal-seeking problems".  This module
quantifies both effects:

* :func:`importance_stability` — retrain the KPI model on bootstrap resamples
  (and optionally across model families) and measure how stable the driver
  ranking is (pairwise Spearman agreement, top-k overlap, per-driver rank
  spread);
* :func:`recommendation_robustness` — take a goal-inversion recommendation and
  re-evaluate it under bootstrap-retrained models, reporting the distribution
  of KPI values the "optimal" driver changes actually deliver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any

import numpy as np

from ..core import ModelManager, PerturbationSet, WhatIfSession
from ..stats import spearman_rank_agreement, top_k_overlap

__all__ = [
    "ImportanceStabilityReport",
    "RecommendationRobustnessReport",
    "importance_stability",
    "recommendation_robustness",
]


@dataclass(frozen=True)
class ImportanceStabilityReport:
    """Stability of driver-importance rankings across resampled models.

    Attributes
    ----------
    drivers:
        Driver names, aligned with the rows of ``importances``.
    importances:
        Matrix of shape ``(n_models, n_drivers)`` of signed importances.
    mean_pairwise_spearman:
        Mean Spearman rank agreement between every pair of models.
    mean_top_k_overlap:
        Mean top-k overlap between every pair of models.
    rank_spread:
        Per-driver difference between its best and worst rank across models
        (0 = perfectly stable).
    """

    drivers: tuple[str, ...]
    importances: np.ndarray
    mean_pairwise_spearman: float
    mean_top_k_overlap: float
    rank_spread: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (importance matrix summarised)."""
        return {
            "drivers": list(self.drivers),
            "n_models": int(self.importances.shape[0]),
            "mean_pairwise_spearman": self.mean_pairwise_spearman,
            "mean_top_k_overlap": self.mean_top_k_overlap,
            "rank_spread": dict(self.rank_spread),
            "mean_importance": {
                driver: float(self.importances[:, j].mean())
                for j, driver in enumerate(self.drivers)
            },
        }


def _importances_for(manager: ModelManager) -> np.ndarray:
    from ..core.driver_importance import compute_driver_importance

    result = compute_driver_importance(manager, verify=False)
    by_driver = {d.driver: d.importance for d in result.drivers}
    return np.array([by_driver[name] for name in manager.drivers])


def importance_stability(
    session: WhatIfSession,
    *,
    n_resamples: int = 8,
    top_k: int = 3,
    random_state: int | None = 0,
) -> ImportanceStabilityReport:
    """Measure ranking stability across bootstrap-retrained models.

    Parameters
    ----------
    session:
        A configured what-if session (its KPI/driver selection is reused).
    n_resamples:
        Number of bootstrap resamples; each trains a fresh model.
    top_k:
        Head size for the top-k overlap statistic.
    random_state:
        Seed for reproducibility.
    """
    if n_resamples < 2:
        raise ValueError("n_resamples must be at least 2")
    rng = np.random.default_rng(random_state)
    drivers = session.drivers
    frame = session.frame

    importance_rows = []
    for i in range(n_resamples):
        indices = rng.integers(0, frame.n_rows, size=frame.n_rows)
        resampled = frame.take(indices)
        manager = ModelManager(
            resampled,
            session.kpi,
            drivers,
            random_state=(random_state or 0) + i,
            cv_folds=0,
        ).fit()
        importance_rows.append(_importances_for(manager))
    importances = np.vstack(importance_rows)

    spearman_scores = []
    overlap_scores = []
    for a, b in combinations(range(n_resamples), 2):
        spearman_scores.append(
            spearman_rank_agreement(np.abs(importances[a]), np.abs(importances[b]))
        )
        overlap_scores.append(
            top_k_overlap(importances[a], importances[b], min(top_k, len(drivers)))
        )

    ranks = np.argsort(np.argsort(-np.abs(importances), axis=1), axis=1) + 1
    rank_spread = {
        driver: int(ranks[:, j].max() - ranks[:, j].min())
        for j, driver in enumerate(drivers)
    }

    return ImportanceStabilityReport(
        drivers=tuple(drivers),
        importances=importances,
        mean_pairwise_spearman=float(np.mean(spearman_scores)),
        mean_top_k_overlap=float(np.mean(overlap_scores)),
        rank_spread=rank_spread,
    )


@dataclass(frozen=True)
class RecommendationRobustnessReport:
    """How a goal-inversion recommendation holds up under model uncertainty.

    Attributes
    ----------
    driver_changes:
        The recommendation being stress-tested.
    nominal_kpi:
        KPI the original model predicts for the recommendation.
    resampled_kpis:
        KPI values predicted by bootstrap-retrained models.
    kpi_std:
        Standard deviation across resampled models (the brittleness measure).
    worst_case_kpi / best_case_kpi:
        Extremes across resampled models.
    regret_vs_nominal:
        ``nominal_kpi - worst_case_kpi`` — how much the promised KPI can
        overstate reality.
    """

    driver_changes: dict[str, float]
    nominal_kpi: float
    resampled_kpis: tuple[float, ...]
    kpi_std: float
    worst_case_kpi: float
    best_case_kpi: float
    regret_vs_nominal: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "driver_changes": dict(self.driver_changes),
            "nominal_kpi": self.nominal_kpi,
            "resampled_kpis": list(self.resampled_kpis),
            "kpi_std": self.kpi_std,
            "worst_case_kpi": self.worst_case_kpi,
            "best_case_kpi": self.best_case_kpi,
            "regret_vs_nominal": self.regret_vs_nominal,
        }


def recommendation_robustness(
    session: WhatIfSession,
    driver_changes: dict[str, float],
    *,
    mode: str = "percentage",
    n_resamples: int = 8,
    random_state: int | None = 0,
) -> RecommendationRobustnessReport:
    """Stress-test a recommended perturbation under bootstrap model retraining."""
    if n_resamples < 2:
        raise ValueError("n_resamples must be at least 2")
    rng = np.random.default_rng(random_state)
    perturbations = PerturbationSet.from_mapping(driver_changes, mode=mode)
    nominal_kpi = session.model.predict_kpi(perturbations.apply(session.frame))

    resampled_kpis = []
    for i in range(n_resamples):
        indices = rng.integers(0, session.frame.n_rows, size=session.frame.n_rows)
        resampled = session.frame.take(indices)
        manager = ModelManager(
            resampled,
            session.kpi,
            session.drivers,
            random_state=(random_state or 0) + i,
            cv_folds=0,
        ).fit()
        resampled_kpis.append(manager.predict_kpi(perturbations.apply(resampled)))

    resampled_array = np.array(resampled_kpis)
    return RecommendationRobustnessReport(
        driver_changes=dict(driver_changes),
        nominal_kpi=nominal_kpi,
        resampled_kpis=tuple(float(v) for v in resampled_kpis),
        kpi_std=float(resampled_array.std(ddof=1)),
        worst_case_kpi=float(resampled_array.min()),
        best_case_kpi=float(resampled_array.max()),
        regret_vs_nominal=float(nominal_kpi - resampled_array.min()),
    )
