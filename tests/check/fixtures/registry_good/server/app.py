"""Good fixture app: routes resolve, patterns used, versions stamped."""

import re

API_VERSION = "1"

_R_SESSIONS = re.compile(r"^/api/v1/sessions/?$")

_ROUTES = (("GET", _R_SESSIONS, "_rest_list_sessions"),)


class Server:
    def _rest_list_sessions(self, match, query, body):
        return 200, {}

    def _send_json(self, status, payload):
        headers = {"X-Repro-Api-Version": API_VERSION}
        return status, headers, payload
