"""Use case U3 — deal closing analysis: the full Figure 2 walk-through.

Reproduces every number quoted in Section 2 of the paper for the deal-closing
snapshot, in the same order the annotated views appear:

* (E) driver importance — top-3 and bottom-3 drivers;
* (H) sensitivity — +40% on *Open Marketing Email* and the resulting up-lift;
* (H) comparison analysis and per-data analysis;
* (I) free goal inversion and the constrained analysis with the
  +40%..+80% bound on *Open Marketing Email*.

Absolute values differ from the paper (the prospect data is synthetic), but
the qualitative shape — which drivers top the chart, the small single-driver
up-lift versus the large constrained-optimisation up-lift — is the same.

Run with::

    python examples/deal_closing.py
"""

from repro import WhatIfSession


def main() -> None:
    session = WhatIfSession.from_use_case("deal_closing")
    print(f"prospects: {session.frame.n_rows}, KPI = {session.kpi.name!r}")
    print(f"observed deal-closing rate: {session.kpi.observed_value(session.frame):.2f}%")

    # (E) driver importance analysis with full verification
    importance = session.driver_importance()
    print("\n(E) Driver importance:")
    for entry in importance.drivers:
        shapley = entry.verification.get("shapley", float("nan"))
        print(
            f"  {entry.rank:>2}. {entry.driver:<24} {entry.importance:+.2f} "
            f"(Shapley check {shapley:+.2f})"
        )
    print(f"  top-3:    {importance.top(3)}")
    print(f"  bottom-3: {importance.bottom(3)}")

    # (H) sensitivity analysis: +40% Open Marketing Email
    sensitivity = session.sensitivity(
        {"Open Marketing Email": 40.0}, track_as="Open Marketing Email +40%"
    )
    print(
        f"\n(H) Sensitivity: +40% Open Marketing Email -> deal-closing rate "
        f"{sensitivity.original_kpi:.2f}% => {sensitivity.perturbed_kpi:.2f}% "
        f"(up-lift {sensitivity.uplift:+.2f} points)"
    )

    # (H) comparison analysis over the three most important drivers
    comparison = session.comparison_analysis(
        drivers=importance.top(3), amounts=(-40.0, -20.0, 0.0, 20.0, 40.0)
    )
    print("\n(H) Comparison analysis (KPI % at -40..+40% per driver):")
    for driver in importance.top(3):
        series = " -> ".join(f"{p.kpi_value:.1f}" for p in comparison.series_for(driver))
        print(f"  {driver:<24} {series}")

    # (H) per-data analysis: drill into the first prospect
    per_data = session.per_data_analysis(0, {"Open Marketing Email": 40.0})
    print(
        f"\n(H) Per-data analysis (prospect 0): closing probability "
        f"{per_data.original_prediction:.2f} -> {per_data.perturbed_prediction:.2f}"
    )

    # (I) free goal inversion
    free = session.goal_inversion("maximize", n_calls=40, track_as="free maximum")
    print(
        f"\n(I) Free goal inversion: best deal-closing rate {free.best_kpi:.2f}% "
        f"(up-lift {free.uplift:+.2f}, confidence {free.model_confidence:.2f})"
    )

    # (I) constrained analysis: Open Marketing Email may only increase 40-80%
    constrained = session.constrained_analysis(
        {"Open Marketing Email": (40.0, 80.0)},
        n_calls=40,
        track_as="constrained maximum",
    )
    print(
        f"(I) Constrained analysis (+40%..+80% Open Marketing Email): best rate "
        f"{constrained.best_kpi:.2f}% (up-lift {constrained.uplift:+.2f})"
    )
    print("    recommended changes (top 5 by magnitude):")
    ranked = sorted(constrained.driver_changes.items(), key=lambda kv: -abs(kv[1]))
    for driver, change in ranked[:5]:
        print(f"      {driver:<24} {change:+.1f}%")

    print("\nScenario ledger:")
    for row in session.scenarios.compare():
        print(f"  #{row['scenario_id']} {row['name']:<28} KPI {row['kpi_value']:.2f}%")


if __name__ == "__main__":
    main()
