"""Thread-safe session registry: many concurrent, id-addressed analyses.

The seed backend held exactly one :class:`~repro.server.handlers.ServerState`
("the current analysis"), so a second user's ``load_use_case`` clobbered the
first.  :class:`SessionRegistry` replaces that with an id-addressed map of
sessions sharing one :class:`~repro.core.cache.ModelCache`:

* ``create`` / ``get`` / ``list_sessions`` / ``close`` — the lifecycle API the
  server actions (``create_session`` etc.) delegate to;
* LRU eviction beyond a capacity cap, and TTL eviction of sessions idle for
  longer than ``ttl_seconds``, so abandoned browser tabs cannot pin memory;
* a per-session :class:`threading.Lock` (``entry.lock``) the dispatcher holds
  while running a handler, serialising requests *within* a session while
  requests across sessions proceed in parallel.

The reserved id :data:`DEFAULT_SESSION_ID` backs requests that carry no
``session_id`` — the backward-compatible single-analysis behaviour.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from .handlers import ServerState

__all__ = ["SessionEntry", "SessionRegistry", "UnknownSessionError", "DEFAULT_SESSION_ID"]

#: Session id used when a request does not specify one.
DEFAULT_SESSION_ID = "default"


class UnknownSessionError(KeyError):
    """Raised when a session id is not (or no longer) registered."""


@dataclass
class SessionEntry:
    """One registered session: its state, lock, and bookkeeping timestamps."""

    session_id: str
    state: ServerState
    created_at: float
    last_used_at: float
    lock: threading.Lock = field(default_factory=threading.Lock)
    request_count: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (timestamps as idle/age seconds are the
        registry's job, since only it knows the clock)."""
        return {
            "session_id": self.session_id,
            "use_case": self.state.use_case_key,
            "loaded": self.state.session is not None,
            "request_count": self.request_count,
        }


class SessionRegistry:
    """Bounded, thread-safe map from session id to :class:`SessionEntry`.

    Parameters
    ----------
    capacity:
        Maximum number of live sessions; creating one more evicts the least
        recently used session.
    ttl_seconds:
        Sessions idle for longer than this are evicted lazily (on any
        create/get/list/stats call).  ``None`` disables TTL eviction.
    pinned:
        Session ids exempt from TTL and LRU eviction (and not counted
        against ``capacity``).  Defaults to the default session, so seed-style
        clients that never send a ``session_id`` keep their analysis for the
        life of the process.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        *,
        capacity: int = 64,
        ttl_seconds: float | None = 3600.0,
        pinned: tuple[str, ...] = (DEFAULT_SESSION_ID,),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.pinned = frozenset(pinned)
        self._clock = clock
        self._entries: OrderedDict[str, SessionEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._created_total = 0
        self._closed_total = 0
        self._evicted_lru = 0
        self._evicted_ttl = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def create(self, session_id: str | None = None) -> SessionEntry:
        """Register a new session and return its entry.

        A fresh uuid-based id is generated unless ``session_id`` is given;
        reusing a live id raises :class:`ValueError`.
        """
        with self._lock:
            self._evict_expired()
            sid = session_id or f"s-{uuid.uuid4().hex[:12]}"
            if sid in self._entries:
                raise ValueError(f"session {sid!r} already exists")
            now = self._clock()
            entry = SessionEntry(
                session_id=sid, state=ServerState(), created_at=now, last_used_at=now
            )
            self._entries[sid] = entry
            self._created_total += 1
            while self._unpinned_count() > self.capacity:
                lru_id = next(
                    eid for eid in self._entries if eid not in self.pinned
                )
                del self._entries[lru_id]
                self._evicted_lru += 1
            return entry

    def _unpinned_count(self) -> int:
        return sum(1 for sid in self._entries if sid not in self.pinned)

    def get(self, session_id: str) -> SessionEntry:
        """Return a live session entry, refreshing its LRU position and
        last-used timestamp; unknown or expired ids raise
        :class:`UnknownSessionError`."""
        with self._lock:
            self._evict_expired()
            entry = self._entries.get(session_id)
            if entry is None:
                raise UnknownSessionError(session_id)
            entry.last_used_at = self._clock()
            self._entries.move_to_end(session_id)
            return entry

    def get_or_create(self, session_id: str) -> SessionEntry:
        """Like :meth:`get`, but registers the session if absent (used for
        the default session, which materialises lazily)."""
        with self._lock:
            try:
                return self.get(session_id)
            except UnknownSessionError:
                return self.create(session_id)

    def close(self, session_id: str) -> SessionEntry:
        """Unregister a session, returning its final entry."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
            if entry is None:
                raise UnknownSessionError(session_id)
            self._closed_total += 1
            return entry

    def list_sessions(self) -> list[dict[str, Any]]:
        """JSON-safe summaries of every live session (most recent last)."""
        with self._lock:
            self._evict_expired()
            now = self._clock()
            return [
                {
                    **entry.to_dict(),
                    "age_seconds": now - entry.created_at,
                    "idle_seconds": now - entry.last_used_at,
                }
                for entry in self._entries.values()
            ]

    # ------------------------------------------------------------------ #
    def _evict_expired(self) -> None:
        if self.ttl_seconds is None:
            return
        now = self._clock()
        expired = [
            sid
            for sid, entry in self._entries.items()
            if sid not in self.pinned and now - entry.last_used_at > self.ttl_seconds
        ]
        for sid in expired:
            del self._entries[sid]
            self._evicted_ttl += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._entries

    def stats(self) -> dict[str, Any]:
        """Registry-level counters for the ``server_stats`` action."""
        with self._lock:
            self._evict_expired()
            return {
                "live_sessions": len(self._entries),
                "capacity": self.capacity,
                "ttl_seconds": self.ttl_seconds,
                "created_total": self._created_total,
                "closed_total": self._closed_total,
                "evicted_lru": self._evicted_lru,
                "evicted_ttl": self._evicted_ttl,
            }
