"""Bad fixture app: dangling route target, orphan pattern, unstamped JSON."""

import re

_R_SESSIONS = re.compile(r"^/api/v1/sessions/?$")
# REG003: defined but never routed
_R_ORPHAN = re.compile(r"^/api/v1/orphan/?$")

_ROUTES = (
    ("GET", _R_SESSIONS, "_rest_list_sessions"),
    # REG003: no such method anywhere in this module
    ("POST", _R_SESSIONS, "_rest_missing"),
)


class Server:
    def _rest_list_sessions(self, match, query, body):
        return 200, {}

    def _send_json(self, status, payload):
        # REG003: response path without the X-Repro-Api-Version header
        return status, payload
