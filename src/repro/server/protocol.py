"""Request/response protocol for the SystemD backend.

The original SystemD has a browser client that sends JSON requests to a Python
backend and re-renders views from the JSON responses.  This module defines the
message envelope and the action vocabulary, one action per view/interaction in
Figure 2:

===================  ======================================================
action               paper view / interaction
===================  ======================================================
``list_use_cases``   (A) use-case selection
``load_use_case``    (A)+(B) load dataset, return table preview
``describe_dataset`` (B) table view metadata
``set_kpi``          (C) KPI selection
``set_drivers``      (D) driver list selection
``driver_importance``(E) driver importance analysis
``sensitivity``      (F)+(G)+(H) perturbation options and sensitivity run
``comparison``       (H) comparison analysis
``per_data``         (H) per-data analysis
``goal_inversion``   (I) goal inversion analysis
``constrained``      (G)+(I) constrained analysis
``run_sweep``        scenario-space sweep (synchronous execution)
``list_scenarios``   options tracking
===================  ======================================================

Beyond the paper's single-analysis vocabulary, the backend serves many
concurrent analyses (see :mod:`repro.server.registry`):

===================  ======================================================
action               session management & durable state
===================  ======================================================
``create_session``   register a new analysis session, returns its id and a
                     read-only ``share_id``
``close_session``    unregister a session (removes its durable record)
``list_sessions``    summaries of every session, live and dormant, paginated
                     with ``limit``/``offset``/``total`` over the stable
                     ``(created_at, session_id)`` ordering
``server_stats``     registry, model-cache, engine, and request counters
``metrics``          JSON twin of the Prometheus metrics exposition
``create_version``   snapshot a session's scenario ledger as an immutable,
                     durably persisted version (*/api/v1 only*)
``list_versions``    list a session's ledger versions (*/api/v1 only*)
``resolve_share``    resolve a read-only share id to its session summary
                     (*/api/v1 only*)
``persist_stats``    durable-state backend identity and row counts
                     (*/api/v1 only*)
===================  ======================================================

Long-running analyses can run without blocking the caller through the async
analysis engine (see :mod:`repro.engine`):

===================  ======================================================
action               async analysis engine
===================  ======================================================
``submit``           queue any analysis action as a background job; returns
                     the job snapshot and whether it coalesced onto an
                     identical in-flight job
``job_status``       lifecycle state, progress fraction, and timings
``job_result``       fetch (optionally wait for) a finished job's payload
``cancel_job``       cooperatively cancel a pending or running job
``list_jobs``        snapshots of tracked jobs plus engine counters
``sweep``            queue a scenario-space sweep as a background job;
                     identical spaces coalesce on (session, model
                     fingerprint, space hash)
``sweep_result``     fetch a sweep job's ranked result, by job id or by
                     the space hash ``sweep`` returned
===================  ======================================================

Every request may carry a ``session_id`` (envelope field or inside
``params``) routing it to one registered session; requests without one fall
back to a shared default session, preserving the seed's single-analysis
behaviour.

Requests and responses are plain dataclasses that serialise to/from dicts, so
they can travel over any transport (the in-process dispatcher used in tests
and benchmarks, or the stdlib HTTP wrapper in :mod:`repro.server.app`).

**Versioned envelope.**  Every response carries ``"api_version":
:data:`API_VERSION`` (and HTTP transports add an ``X-Repro-Api-Version``
header), so clients can detect envelope evolution without sniffing fields.
Failures additionally carry ``error_kind`` — ``"protocol"`` (malformed or
invalid request), ``"not_found"`` (unknown session/job/resource),
``"conflict"`` (duplicate creation), or ``"internal"`` — which the
resource-routed HTTP API maps onto 400/404/409/500 status codes.

**HTTP transports and the bare-POST deprecation path.**  The original wire
transport — POST one request envelope to any path, always receiving 200 with
errors inside the envelope — remains fully supported and byte-compatible
(modulo the additive ``api_version``/``error_kind`` fields above).  New
clients should prefer the resource-routed API served alongside it:

=========================================================  =================
route                                                      action(s)
=========================================================  =================
``GET /api/v1/sessions``                                   ``list_sessions``
``POST /api/v1/sessions``                                  ``create_session``
``GET /api/v1/sessions/{sid}``                             one session's summary
``DELETE /api/v1/sessions/{sid}``                          ``close_session``
``GET /api/v1/sessions/{sid}/jobs``                        ``list_jobs`` (paginated)
``POST /api/v1/sessions/{sid}/jobs``                       ``submit``
``GET /api/v1/sessions/{sid}/jobs/{jid}``                  ``job_status`` / ``job_result``
``DELETE /api/v1/sessions/{sid}/jobs/{jid}``               ``cancel_job``
``GET /api/v1/sessions/{sid}/jobs/{jid}/events``           SSE event stream
``GET /api/v1/sessions/{sid}/scenarios``                   ``list_scenarios`` (paginated)
``GET /api/v1/sessions/{sid}/versions``                    ``list_versions``
``POST /api/v1/sessions/{sid}/versions``                   ``create_version``
``GET /api/v1/sessions/share/{share_id}``                  ``resolve_share``
``GET /api/v1/persistence``                                ``persist_stats``
``GET /api/v1/metrics``                                    Prometheus text (``?format=json`` for the ``metrics`` action)
=========================================================  =================

Deprecation path for the bare-POST protocol — **stage 2 is in effect**:

1. *(done)* both transports served, bare POST was the compatibility surface;
2. **(now)** every bare-POST response carries a ``deprecation`` notice field
   (and HTTP bare-POST responses a ``Warning: 299`` header), and new
   capabilities land on ``/api/v1`` only — the ledger-versioning, share-id,
   and persistence actions (:data:`V1_ONLY_ACTIONS`) are rejected with a
   protocol error naming their ``/api/v1`` route when sent as bare-POST
   envelopes;
3. *(eventually)* bare POST becomes opt-in via server configuration.

No stage breaks the envelope: ``ok``/``data``/``error`` keep their meaning
throughout, and ``/api/v1`` responses never carry ``deprecation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ACTIONS",
    "API_VERSION",
    "BARE_POST_DEPRECATION",
    "ConflictError",
    "NotFoundError",
    "ProtocolError",
    "Request",
    "Response",
    "V1_ONLY_ACTIONS",
]

#: Version stamped into every response envelope (and the
#: ``X-Repro-Api-Version`` HTTP header).
API_VERSION = "1"

#: The full action vocabulary of the backend.
ACTIONS = (
    "list_use_cases",
    "load_use_case",
    "describe_dataset",
    "set_kpi",
    "set_drivers",
    "driver_importance",
    "sensitivity",
    "comparison",
    "per_data",
    "goal_inversion",
    "constrained",
    "run_sweep",
    "list_scenarios",
    "create_session",
    "close_session",
    "list_sessions",
    "server_stats",
    "metrics",
    "submit",
    "job_status",
    "job_result",
    "cancel_job",
    "list_jobs",
    "sweep",
    "sweep_result",
    "create_version",
    "list_versions",
    "resolve_share",
    "persist_stats",
)

#: Actions introduced at deprecation stage 2, served exclusively through
#: their ``/api/v1`` routes.  Bare-POST envelopes naming one of these are
#: rejected with a protocol error pointing at the route.
V1_ONLY_ACTIONS = frozenset(
    {"create_version", "list_versions", "resolve_share", "persist_stats"}
)

#: The stage-2 notice attached to every bare-POST response envelope (see the
#: deprecation path in the module docstring).
#: Kept ASCII-only: HTTP headers are latin-1 encoded and this string rides
#: in the bare-POST ``Warning`` header verbatim.
BARE_POST_DEPRECATION = (
    "the bare-POST protocol is deprecated (stage 2); use the resource-routed "
    "/api/v1 API, where new capabilities land exclusively"
)


class ProtocolError(Exception):
    """Raised for malformed requests (unknown action, missing parameters)."""


class NotFoundError(ProtocolError):
    """Raised when a request names a session/job/resource that does not exist.

    Maps to ``error_kind == "not_found"`` and HTTP 404 on the resource routes.
    """


class ConflictError(ProtocolError):
    """Raised when a request would duplicate an existing resource.

    Maps to ``error_kind == "conflict"`` and HTTP 409 on the resource routes.
    """


@dataclass(frozen=True)
class Request:
    """A client request.

    Attributes
    ----------
    action:
        One of :data:`ACTIONS`.
    params:
        Action-specific parameters (driver lists, perturbations, bounds, ...).
    request_id:
        Client-side correlation id, echoed in the response.
    session_id:
        Target session id (empty routes to the shared default session).
    """

    action: str
    params: dict[str, Any] = field(default_factory=dict)
    request_id: str = ""
    session_id: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ProtocolError(
                f"unknown action {self.action!r}; valid actions: {', '.join(ACTIONS)}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "action": self.action,
            "params": dict(self.params),
            "request_id": self.request_id,
            "session_id": self.session_id,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Request":
        """Parse a request dict (raises :class:`ProtocolError` when malformed)."""
        if "action" not in payload:
            raise ProtocolError("request is missing the 'action' field")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        return cls(
            action=str(payload["action"]),
            params=params,
            request_id=str(payload.get("request_id") or ""),
            session_id=str(payload.get("session_id") or ""),
        )


@dataclass(frozen=True)
class Response:
    """A backend response.

    Attributes
    ----------
    ok:
        Whether the request succeeded.
    data:
        Action-specific payload (empty on error).
    error:
        Error message when ``ok`` is False.
    error_kind:
        Failure taxonomy when ``ok`` is False — ``"protocol"``,
        ``"not_found"``, ``"conflict"``, or ``"internal"`` (empty on
        success).  Serialised only when set, keeping success envelopes
        byte-compatible with earlier clients.
    request_id:
        Correlation id echoed from the request.
    session_id:
        Id of the session that served the request (empty for server-level
        actions such as ``list_use_cases`` or ``server_stats``).
    elapsed_ms:
        Server-side processing time, surfaced so the latency benchmark (P1)
        can report per-view response times the way the paper's "fast real-time
        response" requirement frames them.
    deprecation:
        Stage-2 deprecation notice attached by the bare-POST transport
        (:data:`BARE_POST_DEPRECATION`).  Serialised only when set, keeping
        ``/api/v1`` and in-process envelopes byte-compatible with earlier
        clients.
    """

    ok: bool
    data: dict[str, Any] = field(default_factory=dict)
    error: str = ""
    error_kind: str = ""
    request_id: str = ""
    session_id: str = ""
    elapsed_ms: float = 0.0
    deprecation: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        payload = {
            "ok": self.ok,
            "api_version": API_VERSION,
            "data": dict(self.data),
            "error": self.error,
            "request_id": self.request_id,
            "session_id": self.session_id,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.error_kind:
            payload["error_kind"] = self.error_kind
        if self.deprecation:
            payload["deprecation"] = self.deprecation
        return payload

    @classmethod
    def success(
        cls,
        data: dict[str, Any],
        *,
        request_id: str = "",
        session_id: str = "",
        elapsed_ms: float = 0.0,
    ) -> "Response":
        """Build a success response."""
        return cls(
            ok=True,
            data=data,
            request_id=request_id,
            session_id=session_id,
            elapsed_ms=elapsed_ms,
        )

    @classmethod
    def failure(
        cls,
        error: str,
        *,
        kind: str = "",
        request_id: str = "",
        session_id: str = "",
        elapsed_ms: float = 0.0,
    ) -> "Response":
        """Build an error response."""
        return cls(
            ok=False,
            error=error,
            error_kind=kind,
            request_id=request_id,
            session_id=session_id,
            elapsed_ms=elapsed_ms,
        )
