"""A1 (ablation): Bayesian optimisation vs random and grid search for goal inversion.

Section 2 of the paper chooses Scikit-Optimize's Bayesian optimiser for goal
inversion.  This ablation justifies that choice on the reproduction: at equal
model-evaluation budgets, the Bayesian loop should find deal-closing rates at
least as high as (usually higher than) random search, and much higher than a
coarse grid, because grid resolution collapses as the number of drivers grows.
"""

from __future__ import annotations


from .conftest import print_table

BUDGET = 40
DRIVERS = ["Open Marketing Email", "Renewal", "Call", "Demo Attended", "Trial Signup"]


def test_optimizer_ablation(benchmark, deal_session):
    def run(optimizer: str, seed: int) -> float:
        result = deal_session.goal_inversion(
            "maximize",
            drivers=DRIVERS,
            n_calls=BUDGET,
            optimizer=optimizer,
            default_range=(-50.0, 100.0),
        )
        return result.best_kpi

    bayesian = benchmark.pedantic(lambda: run("bayesian", 0), rounds=1, iterations=1)
    random_search = run("random", 0)
    grid_search = run("grid", 0)
    baseline = deal_session.model.baseline_kpi()

    rows = [
        {"optimizer": "bayesian (gp_minimize)", "best_rate_%": bayesian,
         "uplift_points": bayesian - baseline, "budget": BUDGET},
        {"optimizer": "random search", "best_rate_%": random_search,
         "uplift_points": random_search - baseline, "budget": BUDGET},
        {"optimizer": "grid search", "best_rate_%": grid_search,
         "uplift_points": grid_search - baseline, "budget": BUDGET},
    ]
    print_table(
        f"A1: goal inversion over {len(DRIVERS)} drivers, {BUDGET} model evaluations", rows
    )

    benchmark.extra_info["bayesian"] = bayesian
    benchmark.extra_info["random"] = random_search
    benchmark.extra_info["grid"] = grid_search

    # shape checks: every optimiser improves on the baseline; the model-based
    # optimiser is competitive with or better than the baselines
    assert bayesian > baseline
    assert random_search > baseline
    assert bayesian >= grid_search - 1.0
    assert bayesian >= random_search - 2.0
