"""P3 (performance): scenario-space sweeps vs per-scenario sensitivity loops.

The sweep planner's claim is that discovering options over a whole scenario
grid should not cost one sensitivity analysis per scenario.  This benchmark
drives :func:`repro.scenarios.bench.run_sweep_benchmark`: a three-axis
percentage grid (12×11×10 = 1 320 scenarios) over the deal-closing drivers,
scored once through the box-propagating grid kernel
(:mod:`repro.scenarios.kernel`) and once as the seed-style Python loop of
:func:`~repro.core.sensitivity.run_sensitivity` calls.

Two properties are pinned:

* **bitwise equality** — every one of the 1 320 KPI values from the batched
  sweep equals the per-scenario sensitivity path exactly (the grid kernel
  takes identical tree decisions and gathers identical leaf payloads; it may
  not move a single ulp);
* **speedup ≥ 5×** — the batched sweep must beat the loop by at least 5×
  (measured ~6–7× on one core; the win is structural — boxes of the level
  grid traverse each tree once instead of once per scenario — so it does not
  depend on core count).

Timings are written to ``BENCH_scenario_sweep.json`` (path overridable via
``BENCH_SWEEP_OUTPUT``); the CI ``bench`` job uploads the file and the
bench-regression gate compares it against the committed baseline.
"""

from __future__ import annotations

import json
import os

from repro.scenarios.bench import run_sweep_benchmark

from .conftest import print_table

USE_CASE = "deal_closing"
ROWS = 400
LEVELS = (12, 11, 10)
TOP_K = 10

#: Floor on the batched-vs-looped speedup.  The grid kernel's win comes from
#: work reduction (one box-propagating traversal per tree for the whole
#: grid), not thread parallelism, so the floor holds on a single core.
MIN_SPEEDUP = 5.0


def test_sweep_speedup_bitwise_equality_and_artifact():
    summary = run_sweep_benchmark(
        use_case=USE_CASE, rows=ROWS, levels=LEVELS, top_k=TOP_K, seed=0
    )
    summary["min_speedup_enforced"] = MIN_SPEEDUP

    print_table(
        "Scenario sweep: grid kernel vs per-scenario sensitivity loop",
        [
            {
                "scenarios": summary["n_scenarios"],
                "rows": summary["rows"],
                "loop_s": round(summary["loop_s"], 3),
                "batched_s": round(summary["batched_s"], 3),
                "speedup": round(summary["speedup"], 2),
                "grid_kernel": summary["grid_kernel"],
                "bitwise": summary["bitwise_equal"],
            }
        ],
    )

    # correctness first: the sweep may not trade a single bit for speed
    assert summary["bitwise_equal"], "sweep KPIs diverged from the sensitivity path"
    assert summary["grid_kernel"], "grid kernel unexpectedly not applicable"
    assert summary["n_scenarios"] == 12 * 11 * 10

    # the frontier is sane: the best entry beats the baseline for a
    # maximization sweep over a grid that includes positive perturbations
    assert summary["best"]["kpi_value"] >= summary["baseline_kpi"]
    assert summary["best"]["rank"] == 1

    assert summary["speedup"] >= MIN_SPEEDUP, (
        f"sweep speedup {summary['speedup']:.2f}x below the {MIN_SPEEDUP}x floor"
    )

    path = os.environ.get("BENCH_SWEEP_OUTPUT", "BENCH_scenario_sweep.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    assert os.path.exists(path)
