"""Unit tests for span nesting, context hand-off, capture, and the store."""

from __future__ import annotations

from repro.obs import metrics, trace
from repro.obs.trace import TraceContext, TraceStore


def test_spans_nest_and_share_a_trace():
    with trace.capture() as spans:
        with trace.span("request", action="sweep") as outer:
            with trace.span("job") as inner:
                pass
    assert [record["name"] for record in spans] == ["job", "request"]
    assert inner["trace_id"] == outer["trace_id"]
    assert inner["parent_span_id"] == outer["span_id"]
    assert outer["parent_span_id"] == ""
    assert outer["tags"] == {"action": "sweep"}
    assert all(record["duration_ms"] >= 0.0 for record in spans)


def test_current_context_tracks_the_innermost_span():
    assert trace.current_context() is None
    with trace.capture():
        with trace.span("outer") as outer:
            context = trace.current_context()
            assert context == TraceContext(outer["trace_id"], outer["span_id"])
    assert trace.current_context() is None


def test_activate_reroots_spans_on_a_shipped_context():
    shipped = TraceContext("feedfeedfeedfeed", "beefbeefbeefbeef")
    with trace.capture() as spans:
        with trace.activate(shipped):
            with trace.span("unit"):
                pass
    (record,) = spans
    assert record["trace_id"] == shipped.trace_id
    assert record["parent_span_id"] == shipped.span_id


def test_activate_none_is_a_no_op():
    with trace.capture() as spans:
        with trace.activate(None):
            with trace.span("unit"):
                pass
    assert spans[0]["parent_span_id"] == ""


def test_capture_diverts_from_the_global_store():
    store = trace.trace_store()
    with trace.capture() as spans:
        with trace.span("diverted"):
            pass
    (record,) = spans
    assert store.timeline(record["trace_id"]) == []


def test_uncaptured_spans_land_in_the_global_store():
    with trace.span("stored") as record:
        pass
    timeline = trace.trace_store().timeline(record["trace_id"])
    assert [entry["name"] for entry in timeline] == ["stored"]


def test_disabled_tracing_yields_none_and_records_nothing():
    metrics.set_enabled(False)
    try:
        with trace.capture() as spans:
            with trace.span("ghost") as record:
                assert record is None
        assert spans == []
        assert trace.start_span("ghost") is None
    finally:
        metrics.set_enabled(True)


# --------------------------------------------------------------------------- #
# the bounded store
# --------------------------------------------------------------------------- #
def _record(trace_id, span_id, start_ts=0.0):
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_span_id": "",
        "name": "x",
        "start_ts": start_ts,
        "duration_ms": 1.0,
        "tags": {},
    }


def test_store_evicts_least_recently_touched_trace():
    store = TraceStore(max_traces=2)
    store.record(_record("t1", "a"))
    store.record(_record("t2", "b"))
    store.record(_record("t1", "c"))  # touch t1 so t2 is the LRU victim
    store.record(_record("t3", "d"))
    assert store.timeline("t2") == []
    assert [r["span_id"] for r in store.timeline("t1")] == ["a", "c"]
    assert [r["span_id"] for r in store.timeline("t3")] == ["d"]


def test_store_caps_spans_per_trace():
    store = TraceStore(max_spans=3)
    for index in range(10):
        store.record(_record("t1", f"s{index}", start_ts=float(index)))
    assert len(store.timeline("t1")) == 3


def test_timeline_orders_by_start_time():
    store = TraceStore()
    store.record(_record("t1", "late", start_ts=5.0))
    store.record(_record("t1", "early", start_ts=1.0))
    assert [r["span_id"] for r in store.timeline("t1")] == ["early", "late"]


def test_store_ignores_records_without_a_trace_id():
    store = TraceStore()
    store.record({"span_id": "x", "name": "orphan", "start_ts": 0.0})
    store.record(_record("", "y"))
    assert store.timeline("") == []
