"""Unit tests for the synthetic use-case datasets and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DEAL_DRIVERS,
    DEAL_KPI,
    MARKETING_CHANNELS,
    MARKETING_KPI,
    RETENTION_ACTIVITY_DRIVERS,
    RETENTION_FORMULA_DRIVERS,
    RETENTION_KPI,
    RETENTION_OBVIOUS_DRIVER,
    USE_CASES,
    get_use_case,
    list_use_cases,
    load_customer_retention,
    load_deal_closing,
    load_marketing_mix,
    load_use_case,
)


def _tiny_kwargs(use_case_key: str) -> dict[str, int]:
    """Smallest-size dataset kwargs for each registered use case."""
    if use_case_key == "marketing_mix":
        return {"n_days": 40}
    if use_case_key == "customer_retention":
        return {"n_customers": 40}
    return {"n_prospects": 40}


class TestDealClosing:
    def test_schema(self, deal_frame):
        assert deal_frame.has_column("Account")
        assert deal_frame.has_column(DEAL_KPI)
        for driver in DEAL_DRIVERS:
            assert deal_frame.has_column(driver)
            assert deal_frame.column(driver).dtype == "int"
        assert deal_frame.column(DEAL_KPI).dtype == "bool"
        assert deal_frame.column("Account").dtype == "string"

    def test_base_rate_near_target(self):
        frame = load_deal_closing(n_prospects=2000, random_state=7)
        rate = frame.column(DEAL_KPI).to_numeric().mean()
        assert 0.35 <= rate <= 0.49

    def test_counts_non_negative(self, deal_frame):
        for driver in DEAL_DRIVERS:
            assert deal_frame.column(driver).min() >= 0

    def test_reproducible(self):
        a = load_deal_closing(n_prospects=50, random_state=1)
        b = load_deal_closing(n_prospects=50, random_state=1)
        assert a == b

    def test_different_seed_differs(self):
        a = load_deal_closing(n_prospects=50, random_state=1)
        b = load_deal_closing(n_prospects=50, random_state=2)
        assert a != b

    def test_planted_signal_correlations(self):
        frame = load_deal_closing(n_prospects=3000, random_state=7)
        y = frame.column(DEAL_KPI).to_numeric()
        strong = np.corrcoef(frame.column("Open Marketing Email").to_numeric(), y)[0, 1]
        weak = np.corrcoef(frame.column("Meeting").to_numeric(), y)[0, 1]
        assert strong > 0.15
        assert abs(weak) < 0.08

    def test_size_validation(self):
        with pytest.raises(ValueError):
            load_deal_closing(n_prospects=5)


class TestMarketingMix:
    def test_schema(self, marketing_frame):
        for channel in MARKETING_CHANNELS:
            assert marketing_frame.has_column(channel)
        assert marketing_frame.has_column(MARKETING_KPI)
        assert marketing_frame.has_column("Day")

    def test_six_month_default_length(self):
        assert load_marketing_mix().n_rows == 180

    def test_sales_positive(self, marketing_frame):
        assert marketing_frame.column(MARKETING_KPI).min() >= 0

    def test_spend_positive(self, marketing_frame):
        for channel in MARKETING_CHANNELS:
            assert marketing_frame.column(channel).min() >= 0

    def test_planted_effectiveness_ordering_in_correlations(self):
        frame = load_marketing_mix(n_days=180, random_state=11)
        y = frame.column(MARKETING_KPI).to_numeric()
        internet = np.corrcoef(frame.column("Internet").to_numeric(), y)[0, 1]
        radio = np.corrcoef(frame.column("Radio").to_numeric(), y)[0, 1]
        assert internet > radio

    def test_reproducible(self):
        assert load_marketing_mix(n_days=30, random_state=3) == load_marketing_mix(
            n_days=30, random_state=3
        )

    def test_length_validation(self):
        with pytest.raises(ValueError):
            load_marketing_mix(n_days=5)


class TestCustomerRetention:
    def test_schema(self, retention_frame):
        for activity in RETENTION_ACTIVITY_DRIVERS:
            assert retention_frame.has_column(activity)
        for formula in RETENTION_FORMULA_DRIVERS:
            assert retention_frame.has_column(formula)
            assert retention_frame.column(formula).dtype == "bool"
        assert retention_frame.column(RETENTION_KPI).dtype == "bool"

    def test_formula_drivers_consistent_with_counts(self, retention_frame):
        formulas_used = retention_frame.column("Formulas Used").to_numeric()
        derived = retention_frame.column("Used 3+ Formulas In First Two Weeks").to_numeric()
        np.testing.assert_array_equal(derived, (formulas_used >= 3).astype(float))

    def test_obvious_driver_nearly_determines_label(self, retention_frame):
        active_days = retention_frame.column(RETENTION_OBVIOUS_DRIVER).to_numeric()
        retained = retention_frame.column(RETENTION_KPI).to_numeric()
        correlation = np.corrcoef(active_days, retained)[0, 1]
        assert correlation > 0.85

    def test_retention_rate_plausible(self):
        frame = load_customer_retention(n_customers=2000, random_state=23)
        rate = frame.column(RETENTION_KPI).to_numeric().mean()
        assert 0.45 <= rate <= 0.65

    def test_without_formula_drivers(self):
        frame = load_customer_retention(n_customers=50, include_formula_drivers=False)
        for formula in RETENTION_FORMULA_DRIVERS:
            assert not frame.has_column(formula)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            load_customer_retention(n_customers=3)


class TestRegistry:
    def test_three_use_cases(self):
        assert set(USE_CASES) == {"marketing_mix", "customer_retention", "deal_closing"}
        assert len(list_use_cases()) == 3

    def test_get_use_case(self):
        use_case = get_use_case("deal_closing")
        assert use_case.kpi == DEAL_KPI
        assert use_case.kpi_kind == "discrete"

    def test_unknown_use_case(self):
        with pytest.raises(KeyError):
            get_use_case("weather")

    def test_load_use_case_kwargs_forwarded(self):
        frame = load_use_case("deal_closing", n_prospects=60)
        assert frame.n_rows == 60

    def test_kpi_kind_matches_dataset(self):
        for use_case in list_use_cases():
            frame = use_case.load(**_tiny_kwargs(use_case.key))
            assert frame.has_column(use_case.kpi)

    def test_excluded_drivers_exist_in_dataset(self):
        for use_case in list_use_cases():
            frame = use_case.load(**_tiny_kwargs(use_case.key))
            for column in use_case.excluded_drivers:
                assert frame.has_column(column)
