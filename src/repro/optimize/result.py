"""Result container shared by every optimiser in the substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["OptimizeResult"]


@dataclass
class OptimizeResult:
    """Outcome of an optimisation run.

    All optimisers in :mod:`repro.optimize` minimise; callers that maximise
    (goal inversion maximising a KPI) negate the objective and flip the sign
    of ``fun`` when reporting.

    Attributes
    ----------
    x:
        Best point found (native-scale values, one per dimension).
    fun:
        Objective value at ``x``.
    x_iters:
        Every evaluated point, in evaluation order.
    func_vals:
        Objective value of every evaluated point.
    n_calls:
        Number of objective evaluations performed.
    space_names:
        Dimension names, aligned with the entries of ``x``.
    method:
        Which optimiser produced the result (``"bayesian"``, ``"random"``, ...).
    metadata:
        Free-form extras (e.g. convergence trace, constraint violations).
    """

    x: list[Any]
    fun: float
    x_iters: list[list[Any]] = field(default_factory=list)
    func_vals: list[float] = field(default_factory=list)
    n_calls: int = 0
    space_names: list[str] = field(default_factory=list)
    method: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def best_point_named(self) -> dict[str, Any]:
        """Best point as a ``{dimension name: value}`` mapping."""
        if self.space_names and len(self.space_names) == len(self.x):
            return dict(zip(self.space_names, self.x))
        return {f"x{i}": value for i, value in enumerate(self.x)}

    def convergence_trace(self) -> list[float]:
        """Best objective value seen after each evaluation (monotone)."""
        best: list[float] = []
        current = float("inf")
        for value in self.func_vals:
            current = min(current, value)
            best.append(current)
        return best

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "x": [_to_native(v) for v in self.x],
            "fun": float(self.fun),
            "n_calls": int(self.n_calls),
            "space_names": list(self.space_names),
            "method": self.method,
            "best_point_named": {k: _to_native(v) for k, v in self.best_point_named.items()},
            "func_vals": [float(v) for v in self.func_vals],
        }


def _to_native(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value
