"""P3 (performance): columnar frame kernels vs the row-wise reference paths.

PR 2's tree kernels took model scoring off the critical path, which left the
frame layer's per-row Python loops — tuple-key group-by, dict-assembled
joins — as the dominant cost of per-cohort what-if analyses.  This benchmark
verifies on **every** registry dataset that the columnar group-by, join, and
``from_records`` paths return the same results as the ``_*_rowwise``
references (float aggregates agree to rounding; segment reductions sum in a
different order than ``np.nansum``'s pairwise scheme), and times both paths
at 50k rows, requiring the ≥5× speedup from the issue on group-by-agg and
inner join.

Timings are written to ``BENCH_frame_ops.json`` (path overridable via the
``BENCH_FRAME_OUTPUT`` environment variable); the CI ``bench`` job uploads
that file as a workflow artifact alongside the tree-kernel timings.
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np

from repro.frame import Column, DataFrame, join_frames
from repro.frame.join import _join_rowwise
from repro.datasets import list_use_cases

from .conftest import print_table

#: Moderate per-use-case sizes so the equivalence sweep stays fast.
DATASET_KWARGS = {
    "marketing_mix": {"n_days": 120},
    "customer_retention": {"n_customers": 400},
    "deal_closing": {"n_prospects": 800},
}

#: Grouping column per use case: the KPI for the discrete use cases (two
#: cohorts), the weekday for the continuous marketing panel (seven).
GROUP_KEYS = {
    "marketing_mix": "Day Of Week",
    "customer_retention": "Retained After 6 Months",
    "deal_closing": "Deal Closed?",
}

#: The headline timing configuration from the issue: 50k-row frame, string
#: join/group keys (the worst case for the row-wise paths).
TIMING_ROWS = 50_000
TIMING_GROUPS = 500
MIN_SPEEDUP = 5.0


def _assert_frames_close(actual: DataFrame, expected: DataFrame) -> None:
    """Same columns, rows, and values (floats to rounding; NaN == NaN)."""
    assert actual.columns == expected.columns
    assert actual.n_rows == expected.n_rows
    for name in expected.columns:
        left = actual.column(name)
        right = expected.column(name)
        if left.is_numeric and right.is_numeric:
            np.testing.assert_allclose(
                left.to_numeric(), right.to_numeric(), rtol=1e-9, equal_nan=True
            )
        else:
            assert left.tolist() == right.tolist(), name


def _write_record(name: str, record: dict) -> None:
    """Merge one benchmark record into the shared JSON artifact."""
    path = os.environ.get("BENCH_FRAME_OUTPUT", "BENCH_frame_ops.json")
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                data = loaded
        except (json.JSONDecodeError, OSError):
            data = {}
    data[name] = record
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def _timing_frame() -> tuple[DataFrame, DataFrame]:
    """A 50k-row activity log plus a 500-row account dimension table."""
    rng = np.random.default_rng(0)
    codes = rng.integers(0, TIMING_GROUPS, TIMING_ROWS)
    accounts = np.array(
        [f"acct-{code:04d}" for code in codes], dtype=object
    )
    left = DataFrame(
        {
            "account": Column("account", accounts, dtype="string"),
            "spend": rng.normal(100.0, 25.0, TIMING_ROWS),
            "clicks": rng.integers(0, 50, TIMING_ROWS),
        }
    )
    right = DataFrame(
        {
            "account": Column(
                "account",
                [f"acct-{i:04d}" for i in range(TIMING_GROUPS)],
                dtype="string",
            ),
            "segment": Column(
                "segment",
                [("enterprise" if i % 3 == 0 else "self-serve") for i in range(TIMING_GROUPS)],
                dtype="string",
            ),
            "quota": np.linspace(1.0, 2.0, TIMING_GROUPS),
        }
    )
    return left, right


def test_columnar_results_match_rowwise_on_every_dataset():
    """Group-by, join, and from_records agree with the references on all registry data."""
    for use_case in list_use_cases():
        frame = use_case.load(**DATASET_KWARGS[use_case.key])
        key = GROUP_KEYS[use_case.key]
        value_columns = [
            name for name in frame.numeric_columns() if name != key
        ][:2]

        grouped = frame.groupby(key)
        aggregations = {
            value_columns[0]: "mean",
            value_columns[1]: "sum",
        }
        _assert_frames_close(grouped.agg(aggregations), grouped._agg_rowwise(aggregations))
        _assert_frames_close(grouped.size(), grouped._size_rowwise())

        per_group = grouped.agg({value_columns[0]: "mean"})
        for how in ("inner", "left"):
            _assert_frames_close(
                join_frames(frame, per_group, [key], how=how),
                _join_rowwise(frame, per_group, [key], how=how),
            )

        records = frame.to_records()
        assert DataFrame.from_records(records) == DataFrame._from_records_rowwise(records)


def test_groupby_agg_speedup_and_artifact(benchmark):
    frame, _ = _timing_frame()
    aggregations = {"spend": "mean", "clicks": "sum"}
    grouped = frame.groupby("account")

    columnar = grouped.agg(aggregations)
    started = time.perf_counter()
    rowwise = grouped._agg_rowwise(aggregations)
    rowwise_s = time.perf_counter() - started
    _assert_frames_close(columnar, rowwise)

    def columnar_groupby_agg():
        return frame.groupby("account").agg(aggregations)

    benchmark.pedantic(columnar_groupby_agg, rounds=5, iterations=3)
    columnar_s = float(benchmark.stats["mean"])
    speedup = rowwise_s / columnar_s

    record = {
        "benchmark": "frame_groupby_agg",
        "n_rows": TIMING_ROWS,
        "n_groups": TIMING_GROUPS,
        "rowwise_ms": rowwise_s * 1000.0,
        "columnar_ms": columnar_s * 1000.0,
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
    }
    benchmark.extra_info.update(record)
    _write_record("groupby_agg", record)

    print_table(
        "P3: group-by + aggregate at 50k rows, row-wise vs columnar",
        [
            {
                "path": "row-wise (tuple keys, subframes)",
                "ms": record["rowwise_ms"],
                "speedup": 1.0,
            },
            {
                "path": "columnar (factorize + reduceat)",
                "ms": record["columnar_ms"],
                "speedup": speedup,
            },
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup over the row-wise group-by, got "
        f"{speedup:.1f}x ({record['rowwise_ms']:.1f}ms -> {record['columnar_ms']:.1f}ms)"
    )


def test_inner_join_speedup_and_artifact(benchmark):
    left, right = _timing_frame()

    columnar = join_frames(left, right, ["account"], how="inner")
    started = time.perf_counter()
    rowwise = _join_rowwise(left, right, ["account"], how="inner")
    rowwise_s = time.perf_counter() - started
    _assert_frames_close(columnar, rowwise)
    assert columnar.n_rows == TIMING_ROWS

    def columnar_join():
        return join_frames(left, right, ["account"], how="inner")

    benchmark.pedantic(columnar_join, rounds=5, iterations=1)
    columnar_s = float(benchmark.stats["mean"])
    speedup = rowwise_s / columnar_s

    record = {
        "benchmark": "frame_inner_join",
        "n_left_rows": TIMING_ROWS,
        "n_right_rows": TIMING_GROUPS,
        "rowwise_ms": rowwise_s * 1000.0,
        "columnar_ms": columnar_s * 1000.0,
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
    }
    benchmark.extra_info.update(record)
    _write_record("inner_join", record)

    print_table(
        "P3: inner join 50k x 500, row-wise vs columnar",
        [
            {
                "path": "row-wise (dict index, row dicts)",
                "ms": record["rowwise_ms"],
                "speedup": 1.0,
            },
            {
                "path": "columnar (code join + take)",
                "ms": record["columnar_ms"],
                "speedup": speedup,
            },
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup over the row-wise join, got "
        f"{speedup:.1f}x ({record['rowwise_ms']:.1f}ms -> {record['columnar_ms']:.1f}ms)"
    )


def test_from_records_round_trip_on_timing_frame():
    """Columnar ingestion reproduces the row-wise constructor at 50k rows."""
    left, _ = _timing_frame()
    records = left.head(5_000).to_records()
    assert DataFrame.from_records(records) == DataFrame._from_records_rowwise(records)


def test_artifact_written_after_speedup_tests():
    path = os.environ.get("BENCH_FRAME_OUTPUT", "BENCH_frame_ops.json")
    with open(path) as handle:
        data = json.load(handle)
    assert set(data) >= {"groupby_agg", "inner_join"}
    for record in data.values():
        assert record["speedup"] >= record["min_speedup_required"]
        assert math.isfinite(record["speedup"])
