"""Typed result objects returned by the four what-if functionalities.

Every analysis returns a small dataclass with a ``to_dict`` method; the server
layer serialises these straight into the JSON payloads the paper's client
renders, and the benchmark harness prints them as the rows of the reproduced
tables/figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DriverImportance",
    "ImportanceResult",
    "SensitivityResult",
    "ComparisonPoint",
    "ComparisonResult",
    "PerDataResult",
    "GoalInversionResult",
]


@dataclass(frozen=True)
class DriverImportance:
    """Importance of one driver (one bar of the driver-importance chart).

    Attributes
    ----------
    driver:
        Driver column name.
    importance:
        Signed importance in ``[-1, 1]`` (the paper's display range).
    rank:
        1-based rank by absolute importance (1 = most important).
    verification:
        Cross-check scores for the same driver: Pearson and Spearman
        correlation with the KPI, estimated Shapley importance, and
        permutation importance.
    """

    driver: str
    importance: float
    rank: int
    verification: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "driver": self.driver,
            "importance": self.importance,
            "rank": self.rank,
            "verification": dict(self.verification),
        }


@dataclass(frozen=True)
class ImportanceResult:
    """Output of driver importance analysis (functionality 1).

    Attributes
    ----------
    kpi:
        KPI column name.
    model_kind:
        ``"linear_regression"`` or ``"random_forest_classifier"``.
    drivers:
        Per-driver importances, ordered most-to-least important.
    model_confidence:
        Cross-validated model score (R² or accuracy) in ``[0, 1]``.
    agreement:
        Rank-agreement diagnostics between the model importances and each
        verification measure (Spearman rank agreement and top-3 overlap).
    """

    kpi: str
    model_kind: str
    drivers: tuple[DriverImportance, ...]
    model_confidence: float
    agreement: dict[str, dict[str, float]] = field(default_factory=dict)

    def top(self, k: int = 3) -> list[str]:
        """Names of the ``k`` most important drivers."""
        return [d.driver for d in self.drivers[:k]]

    def bottom(self, k: int = 3) -> list[str]:
        """Names of the ``k`` least important drivers."""
        return [d.driver for d in self.drivers[-k:]]

    def importance_of(self, driver: str) -> float:
        """Signed importance of ``driver``."""
        for entry in self.drivers:
            if entry.driver == driver:
                return entry.importance
        raise KeyError(f"driver {driver!r} not present in the importance result")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "kpi": self.kpi,
            "model_kind": self.model_kind,
            "model_confidence": self.model_confidence,
            "drivers": [d.to_dict() for d in self.drivers],
            "agreement": {k: dict(v) for k, v in self.agreement.items()},
        }


@dataclass(frozen=True)
class SensitivityResult:
    """Output of a single sensitivity-analysis run (functionality 2).

    Attributes
    ----------
    kpi:
        KPI column name.
    original_kpi:
        KPI value predicted on the original dataset (blue bar).
    perturbed_kpi:
        KPI value predicted on the perturbed dataset (yellow bar).
    uplift:
        ``perturbed_kpi - original_kpi`` (positive = green, negative = red).
    perturbations:
        The perturbations applied (JSON-safe list).
    kpi_unit:
        ``"%"`` for rate KPIs, empty otherwise.
    """

    kpi: str
    original_kpi: float
    perturbed_kpi: float
    uplift: float
    perturbations: list[dict[str, Any]]
    kpi_unit: str = ""

    @property
    def relative_uplift(self) -> float:
        """Uplift as a fraction of the original KPI (0 when original is 0)."""
        if self.original_kpi == 0:
            return 0.0
        return self.uplift / abs(self.original_kpi)

    @property
    def direction(self) -> str:
        """``"up"``, ``"down"``, or ``"flat"``."""
        if self.uplift > 1e-12:
            return "up"
        if self.uplift < -1e-12:
            return "down"
        return "flat"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "kpi": self.kpi,
            "original_kpi": self.original_kpi,
            "perturbed_kpi": self.perturbed_kpi,
            "uplift": self.uplift,
            "relative_uplift": self.relative_uplift,
            "direction": self.direction,
            "kpi_unit": self.kpi_unit,
            "perturbations": list(self.perturbations),
        }


@dataclass(frozen=True)
class ComparisonPoint:
    """KPI achieved for one driver at one perturbation magnitude."""

    driver: str
    amount: float
    kpi_value: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {"driver": self.driver, "amount": self.amount, "kpi_value": self.kpi_value}


@dataclass(frozen=True)
class ComparisonResult:
    """Output of comparison analysis: KPI trends per driver over a range.

    This is the "view sensitivity analysis in its entirety and compare KPI
    trends over all drivers" feature of Section 2-H.
    """

    kpi: str
    original_kpi: float
    mode: str
    points: tuple[ComparisonPoint, ...]

    def series_for(self, driver: str) -> list[ComparisonPoint]:
        """All points for one driver, ordered by perturbation amount."""
        return sorted(
            (p for p in self.points if p.driver == driver), key=lambda p: p.amount
        )

    def drivers(self) -> list[str]:
        """Drivers covered by the comparison, in first-appearance order."""
        seen: dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.driver, None)
        return list(seen)

    def most_sensitive_driver(self) -> str:
        """Driver whose KPI range (max - min over the sweep) is largest."""
        best_driver = ""
        best_range = -1.0
        for driver in self.drivers():
            values = [p.kpi_value for p in self.series_for(driver)]
            value_range = max(values) - min(values)
            if value_range > best_range:
                best_range = value_range
                best_driver = driver
        return best_driver

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "kpi": self.kpi,
            "original_kpi": self.original_kpi,
            "mode": self.mode,
            "points": [p.to_dict() for p in self.points],
        }


@dataclass(frozen=True)
class PerDataResult:
    """Output of per-data sensitivity analysis: one row drilled down.

    Attributes
    ----------
    row_index:
        Index of the analysed data point.
    original_prediction:
        Model prediction (probability or value) for the untouched row.
    perturbed_prediction:
        Prediction after perturbing only that row.
    original_row / perturbed_row:
        Driver values before and after perturbation (for display).
    """

    kpi: str
    row_index: int
    original_prediction: float
    perturbed_prediction: float
    original_row: dict[str, Any]
    perturbed_row: dict[str, Any]
    perturbations: list[dict[str, Any]]

    @property
    def uplift(self) -> float:
        """Change in the row-level prediction."""
        return self.perturbed_prediction - self.original_prediction

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "kpi": self.kpi,
            "row_index": self.row_index,
            "original_prediction": self.original_prediction,
            "perturbed_prediction": self.perturbed_prediction,
            "uplift": self.uplift,
            "original_row": dict(self.original_row),
            "perturbed_row": dict(self.perturbed_row),
            "perturbations": list(self.perturbations),
        }


@dataclass(frozen=True)
class GoalInversionResult:
    """Output of goal inversion / constrained analysis (functionalities 3-4).

    Attributes
    ----------
    kpi:
        KPI column name.
    goal:
        ``"maximize"``, ``"minimize"``, or ``"target"``.
    target_value:
        The requested KPI value when ``goal == "target"``; None otherwise.
    best_kpi:
        Best KPI value attained.
    original_kpi:
        KPI value on the unperturbed data (for uplift).
    uplift:
        ``best_kpi - original_kpi``.
    driver_changes:
        Recommended perturbation per driver (in the perturbation mode used).
    mode:
        Perturbation mode of the recommendations.
    model_confidence:
        Cross-validated model score reported alongside recommendations.
    constraints:
        Human-readable constraint descriptions applied to the search.
    n_evaluations:
        Number of model evaluations the optimiser used.
    achieved_target:
        For target goals, whether the target was reached within tolerance.
    """

    kpi: str
    goal: str
    target_value: float | None
    best_kpi: float
    original_kpi: float
    uplift: float
    driver_changes: dict[str, float]
    mode: str
    model_confidence: float
    constraints: list[str] = field(default_factory=list)
    n_evaluations: int = 0
    achieved_target: bool | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "kpi": self.kpi,
            "goal": self.goal,
            "target_value": self.target_value,
            "best_kpi": self.best_kpi,
            "original_kpi": self.original_kpi,
            "uplift": self.uplift,
            "driver_changes": dict(self.driver_changes),
            "mode": self.mode,
            "model_confidence": self.model_confidence,
            "constraints": list(self.constraints),
            "n_evaluations": self.n_evaluations,
            "achieved_target": self.achieved_target,
        }
