"""Persistence-discipline rule (PER family).

Durable state flows through one :class:`~repro.persist.StateBackend`: the
session registry's entries, each session's scenario ledger, and the job
store's records are journaled on every mutation so a restart can rebuild
them.  A mutation that bypasses the journal is invisible until the restart
that loses it — the worst kind of bug to find.  The project convention makes
the contract checkable: a class that owns backend-persisted state declares
the attributes in a ``_PERSISTED_FIELDS`` tuple literal.

* **PER001** — any method (``__init__`` excepted: construction precedes
  binding) that mutates a declared field — assignment, ``del``, item write,
  or a mutating container call (``append``/``update``/``pop``/...) — must
  also touch the persistence layer somewhere in its body: a call whose
  target names ``_persist``, ``backend``, or ``transaction``.  Read-only
  bookkeeping (``move_to_end`` LRU refreshes) is exempt, and deliberate
  exceptions (ledger replay from already-journaled records) carry a
  justified inline suppression.

The check is per-method, not per-statement: a method that journals *and*
mutates is trusted to order the two correctly (that ordering is exercised by
the crash-recovery tests, which a static rule cannot replace).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .astutil import str_constants
from .engine import Project, RawFinding, Rule

__all__ = ["RULES"]

#: Container-call names that mutate their receiver.  ``move_to_end`` is
#: deliberately absent: reordering an OrderedDict changes no persisted
#: content (it is the LRU-refresh idiom).
_MUTATOR_CALLS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "update",
        "setdefault",
    }
)

#: Substrings that mark a call as touching the persistence layer.
_PERSIST_MARKERS = ("_persist", "backend", "transaction")


def _persisted_fields(cls: ast.ClassDef) -> set[str] | None:
    """The class's declared ``_PERSISTED_FIELDS``, or ``None`` when absent."""
    for node in cls.body:
        value = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "_PERSISTED_FIELDS"
                for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "_PERSISTED_FIELDS":
                value = node.value
        if value is not None:
            fields = str_constants(value)
            return set(fields) if fields is not None else None
    return None


def _self_attr_name(expr: ast.expr) -> str | None:
    """``X`` when ``expr`` is exactly ``self.X``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _field_mutations(
    method: ast.AST, fields: set[str]
) -> Iterator[tuple[int, str, str]]:
    """``(lineno, field, how)`` for every mutation of a persisted field."""
    for node in ast.walk(method):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_CALLS:
                receiver = _self_attr_name(node.func.value)
                if receiver in fields:
                    yield node.lineno, receiver, f".{node.func.attr}() call"
            continue
        queue = list(targets)
        while queue:
            expr = queue.pop()
            if isinstance(expr, (ast.Tuple, ast.List)):
                queue.extend(expr.elts)
                continue
            attr = _self_attr_name(expr)
            if attr in fields:
                yield node.lineno, attr, "assignment"
            elif isinstance(expr, ast.Subscript):
                attr = _self_attr_name(expr.value)
                if attr in fields:
                    yield node.lineno, attr, "item write"


def _touches_persistence(method: ast.AST) -> bool:
    """Whether the method body makes any persistence-layer call."""
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            target = ast.unparse(node.func).lower()
            if any(marker in target for marker in _PERSIST_MARKERS):
                return True
    return False


def check_per001(project: Project) -> Iterable[RawFinding]:
    """Mutations of ``_PERSISTED_FIELDS`` attributes bypass the backend."""
    for module in project.modules:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            fields = _persisted_fields(cls)
            if not fields:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue
                if _touches_persistence(method):
                    continue
                for lineno, field_name, how in _field_mutations(method, fields):
                    yield (
                        module.relpath,
                        lineno,
                        f"'{cls.name}.{method.name}' mutates backend-persisted "
                        f"field '{field_name}' ({how}) without touching the "
                        "persistence layer; journal through the backend (or a "
                        "_persist*/transaction helper) so the mutation survives "
                        "a restart",
                    )


RULES = [
    Rule(
        "PER001",
        "error",
        "backend-persisted field mutated without journaling",
        check_per001,
    ),
]
