"""Pearson and Spearman correlation.

The paper verifies model-derived driver importances "using traditional
measures such as Shapley, Pearson, and Spearman rank ... to ensure that the
model coefficients are not misleading".  These two functions provide the
correlation half of that verification; both return values in ``[-1, 1]``,
the same range the driver-importance view displays.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "pearson_correlation",
    "spearman_correlation",
    "correlation_matrix",
    "rankdata",
]


def _validate_pair(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"length mismatch: {x.shape[0]} vs {y.shape[0]}")
    if x.shape[0] < 2:
        raise ValueError("correlation requires at least two observations")
    return x, y


def pearson_correlation(x, y, *, with_p_value: bool = False):
    """Pearson product-moment correlation between ``x`` and ``y``.

    Returns the coefficient, or ``(coefficient, p_value)`` when
    ``with_p_value`` is True.  Constant inputs yield a correlation of 0.0
    (rather than NaN) because a constant driver carries no importance signal.
    """
    x, y = _validate_pair(x, y)
    if np.std(x) == 0 or np.std(y) == 0:
        return (0.0, 1.0) if with_p_value else 0.0
    result = scipy_stats.pearsonr(x, y)
    coefficient = float(result.statistic)
    if with_p_value:
        return coefficient, float(result.pvalue)
    return coefficient


def spearman_correlation(x, y, *, with_p_value: bool = False):
    """Spearman rank correlation between ``x`` and ``y``.

    Same conventions as :func:`pearson_correlation`.
    """
    x, y = _validate_pair(x, y)
    if np.std(x) == 0 or np.std(y) == 0:
        return (0.0, 1.0) if with_p_value else 0.0
    result = scipy_stats.spearmanr(x, y)
    coefficient = float(result.statistic)
    if with_p_value:
        return coefficient, float(result.pvalue)
    return coefficient


def rankdata(values) -> np.ndarray:
    """Average ranks of ``values`` (ties share the mean rank), 1-based."""
    return scipy_stats.rankdata(np.asarray(values, dtype=np.float64))


def correlation_matrix(X, *, method: str = "pearson") -> np.ndarray:
    """Pairwise correlation matrix of the columns of ``X``.

    Parameters
    ----------
    X:
        2-D array of shape ``(n_samples, n_features)``.
    method:
        ``"pearson"`` or ``"spearman"``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("correlation_matrix expects a 2-D array")
    if method not in ("pearson", "spearman"):
        raise ValueError(f"unknown method {method!r}")
    correlate = pearson_correlation if method == "pearson" else spearman_correlation
    n_features = X.shape[1]
    matrix = np.eye(n_features)
    for i in range(n_features):
        for j in range(i + 1, n_features):
            value = correlate(X[:, i], X[:, j])
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix
