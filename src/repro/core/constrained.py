"""Constrained analysis (functionality 4, paper views (G)+(I)).

"In practice, it is not always feasible for users to take the actions
recommended by freely optimized goal inversion" — recommendations may violate
budgets or domain knowledge.  Constrained analysis lets users set low/high
bounds on one or more drivers (plus richer linear or callable constraints) and
re-runs goal inversion inside the feasible region, which is exactly how the
Figure 2 walk-through constrains *Open Marketing Email* to a +40%..+80%
increase and still reaches a much higher deal-closing rate.

The module also provides :class:`DriverBound`, a small value object the server
protocol and the spec grammar use to express per-driver constraints, and a
helper that turns business rules ("total extra spend under $X") into the
optimizer's :class:`~repro.optimize.constraints.LinearConstraint`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from ..optimize import CallableConstraint, ConstraintSet, LinearConstraint
from .goal_inversion import DEFAULT_PERTURBATION_RANGE, invert_goal
from .model_manager import ModelManager
from .results import GoalInversionResult

__all__ = ["DriverBound", "budget_constraint", "run_constrained_analysis"]


@dataclass(frozen=True)
class DriverBound:
    """Low/high bound on one driver's perturbation.

    Attributes
    ----------
    driver:
        Driver column name.
    low, high:
        Inclusive bounds on the perturbation amount (percent or absolute,
        depending on the analysis mode).
    """

    driver: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(
                f"bound for {self.driver!r} must satisfy low < high, got [{self.low}, {self.high}]"
            )

    def as_tuple(self) -> tuple[float, float]:
        """``(low, high)`` pair."""
        return (self.low, self.high)

    def describe(self) -> str:
        """Readable rendering, e.g. ``"Open Marketing Email in [40, 80]"``."""
        return f"{self.driver} in [{self.low:g}, {self.high:g}]"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {"driver": self.driver, "low": self.low, "high": self.high}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DriverBound":
        """Reconstruct from :meth:`to_dict` output."""
        return cls(payload["driver"], float(payload["low"]), float(payload["high"]))


def budget_constraint(
    weights: Mapping[str, float], budget: float, *, name: str = "budget"
) -> LinearConstraint:
    """Build a total-budget constraint over perturbation amounts.

    ``weights`` maps each driver to the cost of one perturbation unit (e.g.
    dollars per +1% of channel spend); the weighted sum of perturbations must
    stay at or below ``budget``.
    """
    return LinearConstraint(coefficients=dict(weights), operator="<=", bound=budget, name=name)


def run_constrained_analysis(
    manager: ModelManager,
    bounds: Sequence[DriverBound] | Mapping[str, tuple[float, float]],
    *,
    goal: str = "maximize",
    target_value: float | None = None,
    drivers: Sequence[str] | None = None,
    extra_constraints: Sequence[LinearConstraint | CallableConstraint] = (),
    mode: str = "percentage",
    default_range: tuple[float, float] = DEFAULT_PERTURBATION_RANGE,
    n_calls: int = 40,
    optimizer: str = "bayesian",
    random_state: int | None = 0,
    checkpoint: Callable[[float], None] | None = None,
) -> GoalInversionResult:
    """Goal inversion restricted to user-specified constraints.

    Parameters
    ----------
    manager:
        The session's model manager.
    bounds:
        Either a sequence of :class:`DriverBound` or a mapping of driver name
        to ``(low, high)``; these drivers' perturbations are confined to the
        given interval while unbounded drivers use ``default_range``.
    goal, target_value, drivers, mode, default_range, n_calls, optimizer,
    random_state, checkpoint:
        Forwarded to :func:`~repro.core.goal_inversion.invert_goal`.
    extra_constraints:
        Additional linear or callable constraints over the perturbation
        vector (budgets, equality rules, domain-knowledge predicates).

    Returns
    -------
    GoalInversionResult
        Same shape as free goal inversion, with constraint descriptions
        recorded alongside the recommendation.
    """
    if isinstance(bounds, Mapping):
        bound_map = {driver: (float(low), float(high)) for driver, (low, high) in bounds.items()}
    else:
        bound_map = {bound.driver: bound.as_tuple() for bound in bounds}
    unknown = [driver for driver in bound_map if driver not in manager.drivers]
    if unknown:
        raise ValueError(f"constrained drivers are not model inputs: {unknown}")

    constraint_set = ConstraintSet(list(extra_constraints))
    chosen = list(drivers) if drivers is not None else list(manager.drivers)
    # Constrained drivers must be part of the varied set, otherwise the bound
    # would silently have no effect.
    for driver in bound_map:
        if driver not in chosen:
            chosen.append(driver)

    return invert_goal(
        manager,
        goal=goal,
        target_value=target_value,
        drivers=chosen,
        bounds=bound_map,
        constraints=constraint_set,
        mode=mode,
        default_range=default_range,
        n_calls=n_calls,
        optimizer=optimizer,
        random_state=random_state,
        checkpoint=checkpoint,
    )
