"""Columnar kernels for the frame layer's hot paths.

The what-if loop slices and dices constantly — "retention per cohort", "sales
per channel per month" — and after the tree kernels (:mod:`repro.ml.kernel`)
removed model scoring from the critical path, the frame layer's per-row Python
loops became the dominant cost of per-cohort analyses.  This module applies
the same compile-to-numpy-arrays pattern to the relational substrate:

* **Key factorization** (:func:`group_index`): every grouping column is
  factorized to dense integer codes — :func:`numpy.unique` for numeric
  columns, one hashing pass for string columns (sorting unicode is several
  times slower than hashing it) — the per-column codes are combined into a
  single group-id array, and one stable argsort yields every group's row
  indices as contiguous segments of one permutation.
  Missing keys (float ``NaN`` / string ``None``) share a single code per
  column, so all-NaN keys land in *one* group instead of fragmenting into
  per-row singletons the way ``NaN != NaN`` tuple keys do.
* **Segment reductions** (:func:`segment_reduce`): aggregations run over the
  grouped permutation with ``np.<ufunc>.reduceat`` — no per-group sub-frame is
  ever materialized.  NaN handling matches the ``np.nan*`` reducers the
  row-wise path uses (order of summation differs, so float results agree to
  rounding, not bitwise).
* **Hash-join indices** (:func:`join_indices`): join keys are factorized over
  the concatenation of both sides so equal values share codes across frames,
  and the matching left/right row-index arrays are built with searchsorted +
  ``np.repeat`` arithmetic.  The caller gathers result columns with
  ``Column.take`` instead of building per-row dicts.

The row-wise reference implementations stay available as ``_*_rowwise``
methods on :class:`~repro.frame.groupby.GroupBy`,
:func:`~repro.frame.join.join_frames`, and
:class:`~repro.frame.dataframe.DataFrame` so equivalence is property-tested
the same way the tree kernels are checked against the recursive walk.

:data:`COLUMN_REDUCERS` is the single reducer table shared by
``DataFrame.aggregate`` and the row-wise group-by path; the vectorized
segment reducers dispatch on the same names, so the two layers can never
drift apart on which aggregations exist.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from .column import Column
from .errors import TypeMismatchError

__all__ = [
    "COLUMN_REDUCERS",
    "GroupIndex",
    "group_index",
    "trivial_group_index",
    "segment_reduce",
    "join_indices",
]

#: The one reducer table for whole-column aggregation.  Keys double as the
#: valid ``how`` names for ``DataFrame.aggregate`` and ``GroupBy.agg``; the
#: callables are the row-wise reference semantics the segment reducers must
#: reproduce.  ``std`` of a single-row column is 0.0 (a one-point sample has
#: no spread), matching ``Column.describe``.
COLUMN_REDUCERS: dict[str, Callable[[Column], float]] = {
    "sum": lambda c: c.sum(),
    "mean": lambda c: c.mean(),
    "min": lambda c: c.min(),
    "max": lambda c: c.max(),
    "median": lambda c: c.median(),
    "std": lambda c: 0.0 if len(c) <= 1 else c.std(),
    "count": lambda c: float(len(c)),
    "nunique": lambda c: float(c.nunique()),
}


# --------------------------------------------------------------------------- #
# factorization
# --------------------------------------------------------------------------- #
def _factorize_float(values: np.ndarray) -> tuple[np.ndarray, int, np.ndarray]:
    """Dense codes for a float array; all NaNs share the final code."""
    nan_mask = np.isnan(values)
    codes = np.zeros(values.shape[0], dtype=np.int64)
    present = values[~nan_mask]
    size = 0
    if present.size:
        uniques, inverse = np.unique(present, return_inverse=True)
        codes[~nan_mask] = inverse
        size = int(uniques.size)
    if nan_mask.any():
        codes[nan_mask] = size
        size += 1
    return codes, max(size, 1), nan_mask


def _factorize_object(values: np.ndarray) -> tuple[np.ndarray, int]:
    """Dense first-appearance codes for a string/object array.

    One dict pass instead of ``np.unique``: sorting tens of thousands of
    unicode values costs several times more than hashing them, and the dict
    hands out codes in first-appearance order, which is exactly the group
    numbering the frame layer exposes.  ``None`` is a regular key, so missing
    strings share one code (and ``None`` joins against ``None``, matching
    Python dict-index semantics).
    """
    codes = [0] * values.shape[0]
    table: dict[Any, int] = {}
    for position, value in enumerate(values):
        try:
            codes[position] = table[value]
        except KeyError:
            table[value] = codes[position] = len(table)
    return np.asarray(codes, dtype=np.int64), max(len(table), 1)


def _factorize_column(column: Column) -> tuple[np.ndarray, int, np.ndarray | None]:
    """Factorize one column; returns ``(codes, code_space, nan_mask_or_None)``.

    The NaN mask is only reported for float columns — joins need it because
    ``NaN`` keys must never match across frames, while ``None`` string keys do
    match (mirroring Python ``None == None`` in the row-wise dict index).
    """
    if column.dtype == "string":
        codes, size = _factorize_object(column.values)
        return codes, size, None
    if column.dtype == "float":
        return _factorize_float(column.values)
    uniques, inverse = np.unique(column.values, return_inverse=True)
    return inverse.astype(np.int64), max(int(uniques.size), 1), None


def _combine_codes(parts: Sequence[tuple[np.ndarray, int]]) -> tuple[np.ndarray, int]:
    """Mix per-column codes into one id array in ``[0, space)``
    (re-compressing before the running code space could overflow ``int64``)."""
    combined, space = parts[0]
    combined = combined.astype(np.int64, copy=True)
    for codes, size in parts[1:]:
        if space * size > 2**62:
            uniques, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64)
            space = int(uniques.size)
        combined = combined * size + codes
        space *= size
    return combined, space


@dataclass(frozen=True)
class GroupIndex:
    """The factorized form of a group-by: one permutation plus segment offsets.

    Attributes
    ----------
    codes:
        Per-row group id in ``[0, n_groups)``, numbered in first-appearance
        order (so iteration matches the row-wise dict-insertion order).
    order:
        Row indices sorted by group id (stable, so rows inside a group keep
        their original order).
    starts:
        Offset of each group's first row inside ``order``.
    counts:
        Rows per group.
    first_rows:
        Original row index of each group's first occurrence — where key
        values are read from when building result frames.
    n_groups:
        Number of distinct key combinations.
    """

    codes: np.ndarray
    order: np.ndarray
    starts: np.ndarray
    counts: np.ndarray
    first_rows: np.ndarray
    n_groups: int

    def segment(self, group: int) -> np.ndarray:
        """Row indices of one group (a view into ``order``)."""
        start = int(self.starts[group])
        return self.order[start : start + int(self.counts[group])]


def trivial_group_index(n_rows: int) -> GroupIndex:
    """The zero-key grouping: every row in one ``()`` group (none when empty)."""
    n_groups = 1 if n_rows else 0
    return GroupIndex(
        codes=np.zeros(n_rows, dtype=np.int64),
        order=np.arange(n_rows, dtype=np.int64),
        starts=np.zeros(n_groups, dtype=np.int64),
        counts=np.full(n_groups, n_rows, dtype=np.int64),
        first_rows=np.zeros(n_groups, dtype=np.int64),
        n_groups=n_groups,
    )


def group_index(key_columns: Sequence[Column]) -> GroupIndex:
    """Factorize ``key_columns`` into a :class:`GroupIndex`.

    Per-column codes come from :func:`numpy.unique`; the combined id array is
    relabelled into first-appearance order and argsorted once, replacing the
    per-row tuple/dict loop of the row-wise path.
    """
    if not key_columns:
        raise ValueError("group_index requires at least one key column")
    parts = [(codes, size) for codes, size, _ in map(_factorize_column, key_columns)]
    combined, space = _combine_codes(parts)
    n_rows = int(combined.shape[0])
    if space <= max(4 * n_rows, 1024):
        # dense relabel: a reverse-order scatter leaves each id's *first* row
        # behind, so no second sort over the combined ids is needed
        first = np.full(space, -1, dtype=np.int64)
        first[combined[::-1]] = np.arange(n_rows - 1, -1, -1, dtype=np.int64)
        present = np.flatnonzero(first >= 0)
        n_groups = int(present.size)
        appearance = np.argsort(first[present], kind="stable")
        rank = np.empty(space, dtype=np.int64)
        rank[present[appearance]] = np.arange(n_groups, dtype=np.int64)
        codes = rank[combined]
        first_rows = first[present][appearance]
    else:
        _, first_pos, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        n_groups = int(first_pos.size)
        appearance = np.argsort(first_pos, kind="stable")
        rank = np.empty(n_groups, dtype=np.int64)
        rank[appearance] = np.arange(n_groups, dtype=np.int64)
        codes = rank[inverse]
        first_rows = first_pos[appearance].astype(np.int64)
    order = np.argsort(codes, kind="stable").astype(np.int64)
    counts = np.bincount(codes, minlength=n_groups).astype(np.int64)
    starts = np.zeros(n_groups, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    return GroupIndex(
        codes=codes,
        order=order,
        starts=starts,
        counts=counts,
        first_rows=first_rows,
        n_groups=n_groups,
    )


# --------------------------------------------------------------------------- #
# segment reductions
# --------------------------------------------------------------------------- #
def segment_reduce(column: Column, index: GroupIndex, how: str) -> np.ndarray:
    """Reduce ``column`` per group of ``index``; returns one float per group.

    ``sum``/``mean``/``min``/``max``/``count`` run as single ``reduceat``
    passes over the grouped permutation; ``median``/``std``/``nunique`` loop
    over the *groups* (never the rows), slicing the same permuted array.  NaN
    semantics match the ``np.nan*`` reducers of the row-wise path.
    """
    if how not in COLUMN_REDUCERS:
        raise TypeMismatchError(
            f"unknown aggregation {how!r}; expected one of {sorted(COLUMN_REDUCERS)}"
        )
    if how == "count":
        return index.counts.astype(np.float64)
    if index.n_groups == 0:
        return np.zeros(0, dtype=np.float64)
    starts, counts = index.starts, index.counts
    if how == "nunique":
        if column.dtype == "string":
            values = column.values[index.order]
            return np.array(
                [
                    float(len(set(values[s : s + c].tolist())))
                    for s, c in zip(starts, counts)
                ],
                dtype=np.float64,
            )
        values = column.to_numeric()[index.order]
        out = np.empty(index.n_groups, dtype=np.float64)
        for g, (s, c) in enumerate(zip(starts, counts)):
            segment = values[s : s + c]
            nan = np.isnan(segment)
            out[g] = float(np.unique(segment[~nan]).size) + float(nan.any())
        return out
    values = column.to_numeric()[index.order]
    nan = np.isnan(values)
    if how == "sum":
        return np.add.reduceat(np.where(nan, 0.0, values), starts)
    if how == "mean":
        sums = np.add.reduceat(np.where(nan, 0.0, values), starts)
        valid = np.add.reduceat((~nan).astype(np.float64), starts)
        out = np.full(index.n_groups, np.nan)
        np.divide(sums, valid, out=out, where=valid > 0)
        return out
    if how in ("min", "max"):
        fill = np.inf if how == "min" else -np.inf
        ufunc = np.minimum if how == "min" else np.maximum
        out = ufunc.reduceat(np.where(nan, fill, values), starts)
        valid = np.add.reduceat((~nan).astype(np.float64), starts)
        out[valid == 0] = np.nan
        return out
    out = np.empty(index.n_groups, dtype=np.float64)
    for g, (s, c) in enumerate(zip(starts, counts)):
        segment = values[s : s + c]
        if how == "median":
            finite = segment[~np.isnan(segment)]
            out[g] = float(np.median(finite)) if finite.size else np.nan
        else:  # std
            out[g] = 0.0 if c <= 1 else float(np.nanstd(segment, ddof=1))
    return out


# --------------------------------------------------------------------------- #
# hash-join indices
# --------------------------------------------------------------------------- #
def _factorize_pair(
    left: Column, right: Column
) -> tuple[np.ndarray, np.ndarray, int, np.ndarray | None, np.ndarray | None]:
    """Factorize one join-key pair into a *shared* code space.

    Numeric pairs factorize over the concatenated float values (so ``1`` in an
    int column matches ``1.0`` in a float column, as Python equality does in
    the row-wise dict index); string pairs share ``None`` as a regular value.
    A numeric/string pair can never compare equal, so each side gets a
    disjoint code range and simply produces no matches.
    """
    n_left = len(left)
    left_string = left.dtype == "string"
    right_string = right.dtype == "string"
    if left_string and right_string:
        codes, size = _factorize_object(
            np.concatenate([left.values, right.values])
        )
        return codes[:n_left], codes[n_left:], size, None, None
    if not left_string and not right_string:
        codes, size, nan_mask = _factorize_float(
            np.concatenate([left.to_numeric(), right.to_numeric()])
        )
        return codes[:n_left], codes[n_left:], size, nan_mask[:n_left], nan_mask[n_left:]
    left_codes, left_size, left_nan = _factorize_column(left)
    right_codes, right_size, right_nan = _factorize_column(right)
    return left_codes, right_codes + left_size, left_size + right_size, left_nan, right_nan


def join_indices(
    left_keys: Sequence[Column],
    right_keys: Sequence[Column],
    how: str = "inner",
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the row-index arrays of a hash join on factorized keys.

    Returns ``(left_idx, right_idx)`` such that row ``i`` of the joined frame
    is left row ``left_idx[i]`` matched with right row ``right_idx[i]``;
    ``right_idx`` is ``-1`` where a left join kept an unmatched left row.
    Match order replicates the row-wise nested loop: left rows in order, and
    within one left row its right matches in ascending right-row order.

    ``NaN`` keys never match (on either side); ``None`` string keys match each
    other, exactly as in the row-wise dict index.
    """
    n_left = len(left_keys[0]) if left_keys else 0
    n_right = len(right_keys[0]) if right_keys else 0
    parts: list[tuple[np.ndarray, int]] = []
    left_nan_any = np.zeros(n_left, dtype=bool)
    right_nan_any = np.zeros(n_right, dtype=bool)
    for left_col, right_col in zip(left_keys, right_keys):
        left_codes, right_codes, size, left_nan, right_nan = _factorize_pair(
            left_col, right_col
        )
        parts.append((np.concatenate([left_codes, right_codes]), size))
        # mixed-dtype key pairs report a NaN mask for only their numeric side
        if left_nan is not None:
            left_nan_any |= left_nan
        if right_nan is not None:
            right_nan_any |= right_nan
    combined, _ = _combine_codes(parts)
    left_ids = combined[:n_left].copy()
    right_ids = combined[n_left:].copy()
    # NaN keys get sentinel ids in disjoint negative ranges so a NaN on one
    # side can never find a NaN on the other.
    left_ids[left_nan_any] = -1
    right_ids[right_nan_any] = -2

    right_order = np.argsort(right_ids, kind="stable").astype(np.int64)
    right_sorted = right_ids[right_order]
    lo = np.searchsorted(right_sorted, left_ids, side="left")
    hi = np.searchsorted(right_sorted, left_ids, side="right")
    counts = (hi - lo).astype(np.int64)

    if how == "inner":
        out_counts = counts
    else:  # left join: unmatched left rows still emit one output row
        out_counts = np.maximum(counts, 1)
    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(n_left, dtype=np.int64), out_counts)
    offsets = np.cumsum(out_counts) - out_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, out_counts)
    positions = np.repeat(lo, out_counts) + within
    if how == "inner":
        right_idx = (
            right_order[positions] if total else np.zeros(0, dtype=np.int64)
        )
        return left_idx, right_idx
    matched = np.repeat(counts > 0, out_counts)
    if n_right:
        gathered = right_order[np.where(matched, positions, 0)]
    else:
        gathered = np.zeros(total, dtype=np.int64)
    right_idx = np.where(matched, gathered, np.int64(-1))
    return left_idx, right_idx
