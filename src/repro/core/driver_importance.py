"""Driver importance analysis (functionality 1, paper view (E)).

The view shows a horizontal bar chart of drivers ranked by how strongly they
drive the KPI, with signed importances in ``[-1, 1]``.  The paper computes
importances from the model itself — linear-regression coefficients for
continuous KPIs and random-forest feature importances for discrete KPIs —
"because they are relatively easier for users to understand", and then
*verifies* them against Shapley values, Pearson correlation, and Spearman rank
correlation "to ensure that the model coefficients are not misleading".

:func:`compute_driver_importance` reproduces that pipeline:

1. take the model-native importance scores from the model manager;
2. sign them by each driver's marginal direction (forest importances are
   unsigned, so the sign comes from the Pearson correlation with the KPI);
3. normalise into ``[-1, 1]`` by the maximum absolute score;
4. compute the verification measures per driver and rank-agreement summaries.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..stats import (
    global_shapley_importance,
    pearson_correlation,
    permutation_importance,
    spearman_correlation,
    spearman_rank_agreement,
    top_k_overlap,
)
from .model_manager import ModelManager
from .results import DriverImportance, ImportanceResult

__all__ = ["compute_driver_importance"]


def _no_checkpoint(fraction: float) -> None:
    """Default progress sink when no checkpoint is threaded through."""


def _normalise_signed(scores: np.ndarray) -> np.ndarray:
    """Scale signed scores into [-1, 1] by the maximum absolute value."""
    peak = np.max(np.abs(scores)) if scores.size else 0.0
    if peak == 0:
        return np.zeros_like(scores)
    return scores / peak


def compute_driver_importance(
    manager: ModelManager,
    *,
    verify: bool = True,
    shapley_samples: int = 40,
    shapley_permutations: int = 10,
    permutation_repeats: int = 3,
    random_state: int | None = 0,
    checkpoint: Callable[[float], None] | None = None,
    executor=None,
) -> ImportanceResult:
    """Run driver importance analysis for a trained model manager.

    Parameters
    ----------
    manager:
        The session's model manager (fitted lazily if necessary).
    verify:
        Whether to compute the Shapley / Pearson / Spearman / permutation
        verification (disable for latency benchmarks).
    shapley_samples, shapley_permutations:
        Sampling effort of the Monte-Carlo Shapley estimate.
    permutation_repeats:
        Shuffles per driver for permutation importance.
    random_state:
        Seed for the stochastic verification estimates.
    checkpoint:
        Optional progress/cancellation callback called at stage boundaries
        (and per driver inside the correlation loops).  Checkpoints only
        interleave with the existing computation, so results are bitwise
        identical with and without one; cancellation latency is bounded by
        the longest single stage (the Shapley estimate).
    executor:
        Optional process executor; the whole analysis then runs as one work
        unit in a worker process (its stages share intermediate arrays, so
        the win is escaping the GIL, not splitting stages).  The seeded
        estimates reproduce identically in the worker.

    Returns
    -------
    ImportanceResult
        Drivers ordered most-to-least important by absolute importance.
    """
    if executor is not None:
        if checkpoint is not None:
            checkpoint(0.0)
        payload = {
            "verify": bool(verify),
            "shapley_samples": int(shapley_samples),
            "shapley_permutations": int(shapley_permutations),
            "permutation_repeats": int(permutation_repeats),
            "random_state": random_state,
        }
        [result] = executor.run_units(
            manager, [("driver_importance", payload)], checkpoint=checkpoint
        )
        return result

    tick = checkpoint if checkpoint is not None else _no_checkpoint
    frame = manager.frame
    drivers = manager.drivers
    kpi = manager.kpi

    X = manager.driver_matrix()
    y = kpi.target_vector(frame)
    tick(0.05)

    raw = manager.raw_importances()
    tick(0.1)
    pearson_scores = []
    for j in range(len(drivers)):
        pearson_scores.append(pearson_correlation(X[:, j], y))
        tick(0.1 + 0.1 * (j + 1) / len(drivers))
    pearson = np.array(pearson_scores)
    if kpi.is_discrete:
        # forest importances are magnitudes; recover the direction of each
        # driver's effect from its correlation with the KPI
        signs = np.sign(pearson)
        signs[signs == 0] = 1.0
        signed = raw * signs
    else:
        signed = raw
    importances = _normalise_signed(signed)

    verification_per_driver: list[dict[str, float]] = [{} for _ in drivers]
    agreement: dict[str, dict[str, float]] = {}
    if verify:
        spearman_scores = []
        for j in range(len(drivers)):
            spearman_scores.append(spearman_correlation(X[:, j], y))
            tick(0.2 + 0.1 * (j + 1) / len(drivers))
        spearman = np.array(spearman_scores)
        shapley = global_shapley_importance(
            manager.model,
            X,
            n_samples=shapley_samples,
            n_permutations=shapley_permutations,
            signed=True,
            random_state=random_state,
        )
        tick(0.7)
        perm = permutation_importance(
            manager.model,
            X,
            y,
            n_repeats=permutation_repeats,
            scoring=_scoring_for(manager),
            random_state=random_state,
        )["importances_mean"]
        tick(0.95)

        for j, driver in enumerate(drivers):
            verification_per_driver[j] = {
                "pearson": float(pearson[j]),
                "spearman": float(spearman[j]),
                "shapley": float(shapley[j]),
                "permutation": float(perm[j]),
            }
        top_k = min(3, len(drivers))
        for name, scores in (
            ("pearson", pearson),
            ("spearman", spearman),
            ("shapley", shapley),
            ("permutation", perm),
        ):
            agreement[name] = {
                "spearman_rank_agreement": spearman_rank_agreement(
                    np.abs(importances), np.abs(scores)
                ),
                f"top{top_k}_overlap": top_k_overlap(importances, scores, top_k),
            }

    order = np.argsort(-np.abs(importances), kind="stable")
    entries = []
    for rank, index in enumerate(order, start=1):
        entries.append(
            DriverImportance(
                driver=drivers[int(index)],
                importance=float(importances[int(index)]),
                rank=rank,
                verification=verification_per_driver[int(index)],
            )
        )

    result = ImportanceResult(
        kpi=kpi.name,
        model_kind=manager.model_kind,
        drivers=tuple(entries),
        model_confidence=manager.confidence(),
        agreement=agreement,
    )
    tick(1.0)
    return result


def _scoring_for(manager: ModelManager):
    """Scoring callable for permutation importance matching the KPI kind."""
    if manager.kpi.is_discrete:
        def score(model, X, y):
            predictions = model.predict(X)
            return float(np.mean(predictions == y))

        return score

    def score(model, X, y):  # R^2 via the estimator's own score
        return float(model.score(X, y))

    return score
