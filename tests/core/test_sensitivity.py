"""Unit tests for sensitivity analysis (functionality 2)."""

from __future__ import annotations

import pytest

from repro.core import PerturbationSet, run_comparison, run_per_data, run_sensitivity


class TestDatasetSensitivity:
    def test_zero_perturbation_is_neutral(self, deal_manager):
        result = run_sensitivity(deal_manager, PerturbationSet.from_mapping({"Call": 0.0}))
        assert result.uplift == pytest.approx(0.0, abs=1e-9)
        assert result.direction == "flat"

    def test_boosting_top_driver_raises_kpi(self, deal_manager):
        result = run_sensitivity(
            deal_manager, PerturbationSet.from_mapping({"Open Marketing Email": 40.0})
        )
        assert result.uplift > 0
        assert result.direction == "up"
        assert result.perturbed_kpi == result.original_kpi + result.uplift

    def test_cutting_top_driver_lowers_kpi(self, deal_manager):
        result = run_sensitivity(
            deal_manager, PerturbationSet.from_mapping({"Open Marketing Email": -60.0})
        )
        assert result.uplift < 0
        assert result.direction == "down"

    def test_multi_driver_perturbation(self, deal_manager):
        result = run_sensitivity(
            deal_manager,
            PerturbationSet.from_mapping(
                {"Open Marketing Email": 30.0, "Call": 30.0, "Renewal": 30.0}
            ),
        )
        single = run_sensitivity(
            deal_manager, PerturbationSet.from_mapping({"Open Marketing Email": 30.0})
        )
        assert result.uplift >= single.uplift - 1e-9

    def test_kpi_unit_for_discrete(self, deal_manager):
        result = run_sensitivity(deal_manager, PerturbationSet.from_mapping({"Call": 10.0}))
        assert result.kpi_unit == "%"
        assert 0.0 <= result.perturbed_kpi <= 100.0

    def test_unknown_driver_rejected(self, deal_manager):
        with pytest.raises(ValueError):
            run_sensitivity(deal_manager, PerturbationSet.from_mapping({"Bogus": 10.0}))

    def test_relative_uplift(self, deal_manager):
        result = run_sensitivity(
            deal_manager, PerturbationSet.from_mapping({"Open Marketing Email": 40.0})
        )
        assert result.relative_uplift == pytest.approx(result.uplift / result.original_kpi)

    def test_continuous_kpi_sensitivity(self, marketing_session):
        result = marketing_session.sensitivity({"Internet": 30.0})
        assert result.kpi_unit == ""
        assert result.uplift > 0

    def test_absolute_mode(self, marketing_session):
        result = marketing_session.sensitivity({"Internet": 500.0}, mode="absolute")
        assert result.uplift > 0

    def test_to_dict(self, deal_manager):
        payload = run_sensitivity(
            deal_manager, PerturbationSet.from_mapping({"Call": 10.0})
        ).to_dict()
        assert set(payload) >= {"original_kpi", "perturbed_kpi", "uplift", "perturbations"}


class TestComparisonAnalysis:
    def test_points_cover_all_driver_amount_pairs(self, deal_manager):
        amounts = (-20.0, 0.0, 20.0)
        result = run_comparison(deal_manager, ["Call", "Chat"], amounts)
        assert len(result.points) == 6
        assert result.drivers() == ["Call", "Chat"]

    def test_zero_amount_equals_baseline(self, deal_manager):
        result = run_comparison(deal_manager, ["Call"], (-10.0, 0.0, 10.0))
        zero_point = [p for p in result.series_for("Call") if p.amount == 0.0][0]
        assert zero_point.kpi_value == result.original_kpi

    def test_series_sorted_by_amount(self, deal_manager):
        result = run_comparison(deal_manager, ["Call"], (20.0, -20.0, 0.0))
        amounts = [p.amount for p in result.series_for("Call")]
        assert amounts == sorted(amounts)

    def test_most_sensitive_driver_is_a_strong_one(self, deal_manager):
        result = run_comparison(
            deal_manager,
            ["Open Marketing Email", "Meeting"],
            (-40.0, 0.0, 40.0),
        )
        assert result.most_sensitive_driver() == "Open Marketing Email"

    def test_default_drivers_are_all(self, deal_manager):
        result = run_comparison(deal_manager, amounts=(0.0, 10.0))
        assert set(result.drivers()) == set(deal_manager.drivers)

    def test_validation(self, deal_manager):
        with pytest.raises(ValueError):
            run_comparison(deal_manager, ["Bogus"], (0.0,))
        with pytest.raises(ValueError):
            run_comparison(deal_manager, ["Call"], ())


class TestPerDataAnalysis:
    def test_row_level_prediction_changes(self, deal_manager):
        result = run_per_data(
            deal_manager, 3, PerturbationSet.from_mapping({"Open Marketing Email": 300.0})
        )
        assert result.row_index == 3
        assert 0.0 <= result.original_prediction <= 1.0
        assert 0.0 <= result.perturbed_prediction <= 1.0
        assert result.perturbed_row["Open Marketing Email"] == pytest.approx(
            result.original_row["Open Marketing Email"] * 4.0
        )

    def test_uplift_property(self, deal_manager):
        result = run_per_data(deal_manager, 0, PerturbationSet.from_mapping({"Call": 50.0}))
        assert result.uplift == pytest.approx(
            result.perturbed_prediction - result.original_prediction
        )

    def test_only_selected_row_perturbed(self, deal_manager):
        result = run_per_data(deal_manager, 2, PerturbationSet.from_mapping({"Call": 100.0}))
        assert result.original_row["Call"] * 2 == pytest.approx(result.perturbed_row["Call"])

    def test_out_of_range_row(self, deal_manager):
        with pytest.raises(IndexError):
            run_per_data(deal_manager, 10**6, PerturbationSet.from_mapping({"Call": 10.0}))

    def test_unknown_driver(self, deal_manager):
        with pytest.raises(ValueError):
            run_per_data(deal_manager, 0, PerturbationSet.from_mapping({"Bogus": 10.0}))

    def test_to_dict(self, deal_manager):
        payload = run_per_data(
            deal_manager, 1, PerturbationSet.from_mapping({"Call": 10.0})
        ).to_dict()
        assert payload["row_index"] == 1
        assert "original_row" in payload and "perturbed_row" in payload
