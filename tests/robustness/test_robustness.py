"""Unit tests for robustness / model-multiplicity analysis."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import WhatIfSession
from repro.datasets import load_deal_closing
from repro.robustness import importance_stability, recommendation_robustness


@pytest.fixture(scope="module")
def session():
    frame = load_deal_closing(n_prospects=250, random_state=7)
    return WhatIfSession(frame, "Deal Closed?", random_state=0)


class TestImportanceStability:
    @pytest.fixture(scope="class")
    def report(self, session):
        return importance_stability(session, n_resamples=4, random_state=0)

    def test_matrix_shape(self, report, session):
        assert report.importances.shape == (4, len(session.drivers))
        assert report.drivers == tuple(session.drivers)

    def test_agreement_scores_bounded(self, report):
        assert -1.0 <= report.mean_pairwise_spearman <= 1.0
        assert 0.0 <= report.mean_top_k_overlap <= 1.0

    def test_planted_signal_gives_positive_agreement(self, report):
        # bootstrap resamples of the same planted process should broadly agree
        assert report.mean_pairwise_spearman > 0.3

    def test_rank_spread_covers_all_drivers(self, report, session):
        assert set(report.rank_spread) == set(session.drivers)
        assert all(spread >= 0 for spread in report.rank_spread.values())

    def test_importances_in_display_range(self, report):
        assert np.all(np.abs(report.importances) <= 1.0 + 1e-9)

    def test_to_dict_json_safe(self, report):
        assert json.dumps(report.to_dict())

    def test_requires_at_least_two_resamples(self, session):
        with pytest.raises(ValueError):
            importance_stability(session, n_resamples=1)


class TestRecommendationRobustness:
    @pytest.fixture(scope="class")
    def report(self, session):
        return recommendation_robustness(
            session, {"Open Marketing Email": 50.0, "Call": 30.0}, n_resamples=4, random_state=0
        )

    def test_resampled_kpis_count(self, report):
        assert len(report.resampled_kpis) == 4

    def test_worst_and_best_bracket_resamples(self, report):
        assert report.worst_case_kpi == min(report.resampled_kpis)
        assert report.best_case_kpi == max(report.resampled_kpis)
        assert report.worst_case_kpi <= report.best_case_kpi

    def test_regret_definition(self, report):
        assert report.regret_vs_nominal == pytest.approx(
            report.nominal_kpi - report.worst_case_kpi
        )

    def test_kpi_std_non_negative(self, report):
        assert report.kpi_std >= 0.0

    def test_kpis_are_valid_rates(self, report):
        for value in report.resampled_kpis:
            assert 0.0 <= value <= 100.0

    def test_to_dict_json_safe(self, report):
        assert json.dumps(report.to_dict())

    def test_requires_at_least_two_resamples(self, session):
        with pytest.raises(ValueError):
            recommendation_robustness(session, {"Call": 10.0}, n_resamples=1)
