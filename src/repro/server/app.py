"""The SystemD backend server.

:class:`SystemDServer` is the in-process dispatcher: it accepts
:class:`~repro.server.protocol.Request` objects (or raw dicts / JSON strings),
routes them to the handler for their action, times the call, and wraps the
payload in a :class:`~repro.server.protocol.Response`.  Tests, benchmarks, and
the examples drive this object directly — it exercises exactly the code path a
browser client would, minus the socket.

One server hosts many concurrent analyses: requests are routed by
``session_id`` through a :class:`~repro.server.registry.SessionRegistry`
(requests without one fall back to a shared default session), every session
fetches trained models from one shared
:class:`~repro.core.cache.ModelCache`, and a per-session lock makes
``handle`` safe under concurrent callers — requests within a session
serialise, requests across sessions run in parallel.

Long-running analyses need not block their caller at all: every server owns
an :class:`~repro.engine.AnalysisEngine` whose ``submit`` / ``job_status`` /
``job_result`` / ``cancel_job`` / ``list_jobs`` actions run the same analysis
handlers on a worker pool, with progress reporting and cooperative
cancellation.  Synchronous handling of the pre-existing actions is untouched.

:func:`serve_http` wraps the same dispatcher in a stdlib
:class:`http.server.ThreadingHTTPServer` for anyone who wants to poke the
backend with ``curl``; it is optional and nothing else in the package depends
on it.  Malformed envelopes (invalid JSON, non-object bodies, unknown
actions) come back as structured JSON error bodies with 4xx status codes.

The HTTP wrapper serves two surfaces (see :mod:`repro.server.protocol` for
the deprecation path): the original bare-POST protocol (POST an envelope to
any non-API path, always 200 with errors inside the envelope), and the
resource-routed API under ``/api/v1`` where HTTP verbs map to actions,
failures carry real status codes (404 unknown resource, 409 duplicate, 400
bad request), and ``GET .../jobs/{jid}/events`` streams the job's event bus
as Server-Sent Events with ``Last-Event-ID`` resume.
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qsl, urlsplit

from ..core import ModelCache
from ..obs import metrics, trace
from ..persist import StateBackend, open_backend
from .handlers import HANDLERS, SERVER_HANDLERS, ServerState
from .protocol import (
    ACTIONS,
    API_VERSION,
    BARE_POST_DEPRECATION,
    ConflictError,
    NotFoundError,
    ProtocolError,
    Request,
    Response,
    V1_ONLY_ACTIONS,
)
from .registry import DEFAULT_SESSION_ID, SessionRegistry, UnknownSessionError
from .serialization import to_json_safe

__all__ = ["SystemDServer", "serve_http", "SSE_KEEPALIVE_S"]

#: Requests remembered by the bounded request log.
REQUEST_LOG_LIMIT = 1000

#: Seconds between SSE keepalive comments when a job stream is idle.  The
#: keepalive write is also how a dropped client is detected (the next write
#: fails), bounding how long ``cancel_on_disconnect`` jobs outlive readers.
SSE_KEEPALIVE_S = 1.0

#: ``error_kind`` → HTTP status for the resource-routed API.
_KIND_STATUS = {"protocol": 400, "not_found": 404, "conflict": 409, "internal": 500}

_REQUESTS_TOTAL = metrics.counter("repro_requests_total")
_REQUEST_LATENCY = metrics.histogram("repro_request_latency_ms")


def _protocol_kind(exc: ProtocolError) -> str:
    """Map a protocol exception to its ``error_kind`` taxonomy value."""
    if isinstance(exc, NotFoundError):
        return "not_found"
    if isinstance(exc, ConflictError):
        return "conflict"
    return "protocol"


def _status_for(response: Response) -> int:
    """HTTP status for a response on the resource-routed API."""
    if response.ok:
        return 200
    return _KIND_STATUS.get(response.error_kind, 400)


# Resource routes: ``(method, compiled path pattern, SystemDServer method
# name)``.  The SSE events route is matched separately by the HTTP handler
# because it needs the raw socket, not a ``(status, Response)`` pair.
_R_SESSIONS = re.compile(r"^/api/v1/sessions/?$")
_R_SESSION = re.compile(r"^/api/v1/sessions/(?P<sid>[^/]+)/?$")
_R_JOBS = re.compile(r"^/api/v1/sessions/(?P<sid>[^/]+)/jobs/?$")
_R_JOB = re.compile(r"^/api/v1/sessions/(?P<sid>[^/]+)/jobs/(?P<jid>[^/]+)/?$")
_R_JOB_EVENTS = re.compile(
    r"^/api/v1/sessions/(?P<sid>[^/]+)/jobs/(?P<jid>[^/]+)/events/?$"
)
_R_SCENARIOS = re.compile(r"^/api/v1/sessions/(?P<sid>[^/]+)/scenarios/?$")
_R_VERSIONS = re.compile(r"^/api/v1/sessions/(?P<sid>[^/]+)/versions/?$")
_R_SHARE = re.compile(r"^/api/v1/sessions/share/(?P<share_id>[^/]+)/?$")
_R_PERSIST = re.compile(r"^/api/v1/persistence/?$")
_R_METRICS = re.compile(r"^/api/v1/metrics/?$")

_ROUTES: tuple[tuple[str, re.Pattern[str], str], ...] = (
    ("GET", _R_SESSIONS, "_rest_list_sessions"),
    ("POST", _R_SESSIONS, "_rest_create_session"),
    # the share route precedes the single-session route: ``share`` would
    # otherwise match as a session id for two-segment lookalike paths
    ("GET", _R_SHARE, "_rest_resolve_share"),
    ("GET", _R_SESSION, "_rest_get_session"),
    ("DELETE", _R_SESSION, "_rest_close_session"),
    ("GET", _R_JOBS, "_rest_list_jobs"),
    ("POST", _R_JOBS, "_rest_submit_job"),
    ("GET", _R_JOB, "_rest_get_job"),
    ("DELETE", _R_JOB, "_rest_cancel_job"),
    ("GET", _R_SCENARIOS, "_rest_list_scenarios"),
    ("GET", _R_VERSIONS, "_rest_list_versions"),
    ("POST", _R_VERSIONS, "_rest_create_version"),
    ("GET", _R_PERSIST, "_rest_persist_stats"),
)


def _deprecated(response: Response) -> Response:
    """Stamp the stage-2 deprecation notice onto a bare-POST response."""
    return dataclasses.replace(response, deprecation=BARE_POST_DEPRECATION)


class SystemDServer:
    """In-process SystemD backend serving many id-addressed sessions.

    Parameters
    ----------
    registry:
        Session registry (capacity, TTL); a default one is created if omitted.
    model_cache:
        Model cache shared by every session this server creates.
    engine_workers:
        Worker threads of the async analysis engine (threads start lazily on
        the first ``submit``).  With ``executor="process"`` the same count
        sizes the process pool.
    job_retention:
        Finished jobs the engine's store retains (LRU) for ``job_status`` /
        ``job_result`` polling.
    executor:
        ``"thread"`` (default) or ``"process"`` — passed through to the
        engine; ``"process"`` fans the CPU-bound job actions out across a
        persistent process pool (see
        :class:`~repro.engine.process.ProcessExecutor`), falling back to
        threads where ``spawn`` is unavailable.
    backend:
        Durable-state backend for the registry and the engine's job store
        (ignored when an explicit ``registry`` is passed — its backend wins,
        so registry and job store always share one backend).  Defaults to
        the process-local :class:`~repro.persist.MemoryBackend`.
    """

    def __init__(
        self,
        *,
        registry: SessionRegistry | None = None,
        model_cache: ModelCache | None = None,
        engine_workers: int = 4,
        job_retention: int = 256,
        executor: str = "thread",
        backend: StateBackend | None = None,
    ) -> None:
        # imported here, not at module level: repro.engine imports the handler
        # tables from repro.server, so a module-level import would be circular
        from ..engine import AnalysisEngine

        self.registry = (
            registry if registry is not None else SessionRegistry(backend=backend)
        )
        self.model_cache = model_cache if model_cache is not None else ModelCache()
        # sessions recovered lazily by the registry rebuild their models
        # through the server's shared cache
        self.registry.model_cache = self.model_cache
        self.engine = AnalysisEngine(
            self,
            workers=engine_workers,
            max_finished=job_retention,
            executor=executor,
            backend=self.registry.backend,
        )
        self._request_log: deque[dict[str, Any]] = deque(maxlen=REQUEST_LOG_LIMIT)
        self._log_lock = threading.Lock()
        self._requests_total = 0
        self._requests_failed = 0

    # ------------------------------------------------------------------ #
    def recover_sessions(self) -> list[str]:
        """Eagerly recover every dormant session from the durable backend
        (``repro serve --recover``); lazy per-session recovery on first touch
        happens regardless.  Returns the recovered session ids."""
        return self.registry.recover_all()

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> ServerState:
        """The default session's state (single-analysis backward compat)."""
        return self._entry_for(DEFAULT_SESSION_ID).state

    def _entry_for(self, session_id: str):
        """Resolve a session id to its registry entry.

        The default session materialises lazily; any other id must have been
        registered through ``create_session``.
        """
        if session_id == DEFAULT_SESSION_ID:
            entry = self.registry.get_or_create(session_id)
            if entry.state.model_cache is None:
                entry.state.model_cache = self.model_cache
            return entry
        try:
            return self.registry.get(session_id)
        except UnknownSessionError as exc:
            raise NotFoundError(
                f"unknown session {session_id!r}; create one with 'create_session' "
                "or omit session_id for the default session"
            ) from exc

    # ------------------------------------------------------------------ #
    def handle(self, request: Request | dict[str, Any] | str) -> Response:
        """Process one request and return a response (never raises).

        Safe to call from many threads at once: session-scoped actions run
        under their session's lock, server-scoped actions (session lifecycle,
        stats) rely on the registry's own synchronisation.
        """
        started = time.perf_counter()
        request_id = ""
        session_id = ""
        try:
            request = self._coerce_request(request)
            request_id = request.request_id
            # The trace root: jobs submitted while this span is active parent
            # onto it, so an async analysis's timeline starts at its request.
            with trace.span("request", action=request.action):
                if request.action in SERVER_HANDLERS:
                    params = dict(request.params)
                    if request.session_id:
                        params.setdefault("session_id", request.session_id)
                    data = SERVER_HANDLERS[request.action](self, params)
                    if request.action == "create_session":
                        session_id = str(data.get("session_id", ""))
                else:
                    session_id = str(
                        request.session_id
                        or request.params.get("session_id", "")
                        or DEFAULT_SESSION_ID
                    )
                    entry = self._entry_for(session_id)
                    handler = HANDLERS[request.action]
                    with entry.lock:
                        entry.request_count += 1
                        data = handler(entry.state, request.params)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            response = Response.success(
                to_json_safe(data),
                request_id=request_id,
                session_id=session_id,
                elapsed_ms=elapsed_ms,
            )
        except ProtocolError as exc:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            response = Response.failure(
                str(exc),
                kind=_protocol_kind(exc),
                request_id=request_id,
                session_id=session_id,
                elapsed_ms=elapsed_ms,
            )
        except Exception as exc:  # noqa: BLE001 - the server must not crash
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            response = Response.failure(
                f"internal error: {type(exc).__name__}: {exc}",
                kind="internal",
                request_id=request_id,
                session_id=session_id,
                elapsed_ms=elapsed_ms,
            )
        self._record(getattr(request, "action", "?"), session_id, response)
        return response

    def _record(self, action: str, session_id: str, response: Response) -> None:
        """Append one request outcome to the bounded log and counters."""
        # Unknown action strings collapse onto one label so a fuzzing client
        # cannot grow the label space unboundedly.
        label = action if action in ACTIONS else "invalid"
        _REQUESTS_TOTAL.labels(label, "true" if response.ok else "false").inc()
        _REQUEST_LATENCY.labels(label).observe(float(response.elapsed_ms))
        with self._log_lock:
            self._requests_total += 1
            if not response.ok:
                self._requests_failed += 1
            self._request_log.append(
                {
                    "action": action,
                    "session_id": session_id,
                    "ok": response.ok,
                    "elapsed_ms": response.elapsed_ms,
                }
            )

    def handle_json(self, payload: str) -> str:
        """JSON-string in, JSON-string out (the wire-level entry point)."""
        return json.dumps(self.handle(payload).to_dict())

    def handle_http(self, body: str) -> tuple[int, Response]:
        """Dispatch one HTTP request body, returning ``(status, response)``.

        This is the bare-POST protocol surface, at deprecation stage 2: every
        response it returns carries the :data:`BARE_POST_DEPRECATION` notice,
        and :data:`V1_ONLY_ACTIONS` are rejected with a protocol error naming
        their ``/api/v1`` route.  Envelope problems — invalid JSON, a
        non-object body, a missing or unknown action — are rejected with
        status 400 and a structured error response (still counted in the
        request log); well-formed requests dispatch through :meth:`handle`
        and return 200, with handler-level failures reported inside the
        envelope as before.
        """
        try:
            payload = json.loads(body) if body.strip() else {}
        except json.JSONDecodeError as exc:
            response = Response.failure(f"request is not valid JSON: {exc}", kind="protocol")
            self._record("?", "", response)
            return 400, _deprecated(response)
        if not isinstance(payload, dict):
            response = Response.failure(
                f"request body must be a JSON object, got {type(payload).__name__}",
                kind="protocol",
            )
            self._record("?", "", response)
            return 400, _deprecated(response)
        try:
            request = Request.from_dict(payload)
        except ProtocolError as exc:
            response = Response.failure(
                str(exc), kind="protocol", request_id=str(payload.get("request_id") or "")
            )
            self._record(str(payload.get("action", "?")), "", response)
            return 400, _deprecated(response)
        if request.action in V1_ONLY_ACTIONS:
            response = Response.failure(
                f"action {request.action!r} is served through /api/v1 only "
                "(bare-POST deprecation stage 2); see the route table in "
                "repro.server.protocol",
                kind="protocol",
                request_id=request.request_id,
            )
            self._record(request.action, "", response)
            return 400, _deprecated(response)
        return 200, _deprecated(self.handle(request))

    # ------------------------------------------------------------------ #
    # resource-routed API (/api/v1): HTTP verbs mapped onto actions
    # ------------------------------------------------------------------ #
    def handle_rest(
        self,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        body: dict[str, Any] | None = None,
    ) -> tuple[int, Response] | None:
        """Dispatch one resource-routed request, returning ``(status, response)``.

        Returns ``None`` when no route matches ``(method, path)`` so the HTTP
        adapter can fall back (bare-POST protocol for POST, 404/405 for the
        rest).  Unlike the bare-POST surface, handler failures surface as
        real HTTP status codes via ``error_kind``.
        """
        query = query or {}
        body = body if isinstance(body, dict) else {}
        for route_method, pattern, attr in _ROUTES:
            if route_method != method.upper():
                continue
            match = pattern.match(path)
            if match is None:
                continue
            adapter: Callable[..., tuple[int, Response]] = getattr(self, attr)
            return adapter(match, query, body)
        return None

    def _rest_failure(
        self, action: str, session_id: str, error: str, kind: str
    ) -> Response:
        """Build (and log) a failure synthesised by the routing layer itself."""
        response = Response.failure(error, kind=kind, session_id=session_id)
        self._record(action, session_id, response)
        return response

    def _session_exists(self, session_id: str) -> bool:
        """Whether a session id is currently addressable (default is always)."""
        if session_id == DEFAULT_SESSION_ID:
            return True
        try:
            self.registry.get(session_id)
        except UnknownSessionError:
            return False
        return True

    def _job_session_error(
        self, action: str, session_id: str, job_id: str
    ) -> Response | None:
        """404-shaped failure unless ``job_id`` exists and belongs to the session."""
        from ..engine import UnknownJobError  # circular at module level

        try:
            job = self.engine.status(job_id)
        except UnknownJobError:
            return self._rest_failure(
                action,
                session_id,
                f"unknown job {job_id!r} (finished jobs are retained LRU; it may "
                "have been evicted)",
                "not_found",
            )
        job_session = job.session_id or DEFAULT_SESSION_ID
        if job_session != session_id:
            return self._rest_failure(
                action,
                session_id,
                f"job {job_id!r} does not belong to session {session_id!r}",
                "not_found",
            )
        return None

    @staticmethod
    def _query_flag(query: dict[str, str], name: str) -> bool:
        return str(query.get(name, "")).lower() in ("1", "true", "yes", "on")

    @staticmethod
    def _page_params(query: dict[str, str]) -> dict[str, Any]:
        params: dict[str, Any] = {}
        if "limit" in query:
            params["limit"] = query["limit"]
        if "offset" in query:
            params["offset"] = query["offset"]
        return params

    def _rest_list_sessions(self, match, query, body) -> tuple[int, Response]:
        response = self.handle(
            Request(action="list_sessions", params=self._page_params(query))
        )
        return _status_for(response), response

    def _rest_create_session(self, match, query, body) -> tuple[int, Response]:
        response = self.handle(Request(action="create_session", params=dict(body)))
        return (201 if response.ok else _status_for(response)), response

    def _rest_get_session(self, match, query, body) -> tuple[int, Response]:
        session_id = match.group("sid")
        response = self.handle(Request(action="list_sessions"))
        if not response.ok:
            return _status_for(response), response
        for summary in response.data.get("sessions", []):
            if summary.get("session_id") == session_id:
                return 200, Response.success(
                    {"session": summary},
                    session_id=session_id,
                    elapsed_ms=response.elapsed_ms,
                )
        return 404, self._rest_failure(
            "get_session", session_id, f"unknown session {session_id!r}", "not_found"
        )

    def _rest_close_session(self, match, query, body) -> tuple[int, Response]:
        session_id = match.group("sid")
        response = self.handle(
            Request(action="close_session", params={"session_id": session_id})
        )
        return _status_for(response), response

    def _rest_list_jobs(self, match, query, body) -> tuple[int, Response]:
        session_id = match.group("sid")
        if not self._session_exists(session_id):
            return 404, self._rest_failure(
                "list_jobs", session_id, f"unknown session {session_id!r}", "not_found"
            )
        params: dict[str, Any] = {"session_id": session_id, **self._page_params(query)}
        if "states" in query:
            params["states"] = [s for s in query["states"].split(",") if s]
        response = self.handle(Request(action="list_jobs", params=params))
        return _status_for(response), response

    def _rest_submit_job(self, match, query, body) -> tuple[int, Response]:
        session_id = match.group("sid")
        if not self._session_exists(session_id):
            return 404, self._rest_failure(
                "submit", session_id, f"unknown session {session_id!r}", "not_found"
            )
        params = dict(body)
        params["session_id"] = session_id
        response = self.handle(Request(action="submit", params=params))
        return (201 if response.ok else _status_for(response)), response

    def _rest_get_job(self, match, query, body) -> tuple[int, Response]:
        session_id, job_id = match.group("sid"), match.group("jid")
        error = self._job_session_error("job_status", session_id, job_id)
        if error is not None:
            return 404, error
        if self._query_flag(query, "result"):
            params: dict[str, Any] = {"job_id": job_id, "session_id": session_id}
            if "wait" in query:
                params["wait"] = self._query_flag(query, "wait")
            if "timeout_s" in query:
                params["timeout_s"] = query["timeout_s"]
            response = self.handle(Request(action="job_result", params=params))
        else:
            response = self.handle(
                Request(action="job_status", params={"job_id": job_id})
            )
        return _status_for(response), response

    def _rest_cancel_job(self, match, query, body) -> tuple[int, Response]:
        session_id, job_id = match.group("sid"), match.group("jid")
        error = self._job_session_error("cancel_job", session_id, job_id)
        if error is not None:
            return 404, error
        response = self.handle(Request(action="cancel_job", params={"job_id": job_id}))
        return _status_for(response), response

    def _rest_list_scenarios(self, match, query, body) -> tuple[int, Response]:
        session_id = match.group("sid")
        params = self._page_params(query)
        response = self.handle(
            Request(action="list_scenarios", params=params, session_id=session_id)
        )
        return _status_for(response), response

    def _rest_list_versions(self, match, query, body) -> tuple[int, Response]:
        session_id = match.group("sid")
        params: dict[str, Any] = {"session_id": session_id, **self._page_params(query)}
        response = self.handle(Request(action="list_versions", params=params))
        return _status_for(response), response

    def _rest_create_version(self, match, query, body) -> tuple[int, Response]:
        session_id = match.group("sid")
        params = dict(body)
        params["session_id"] = session_id
        response = self.handle(Request(action="create_version", params=params))
        return (201 if response.ok else _status_for(response)), response

    def _rest_resolve_share(self, match, query, body) -> tuple[int, Response]:
        share_id = match.group("share_id")
        response = self.handle(
            Request(action="resolve_share", params={"share_id": share_id})
        )
        return _status_for(response), response

    def _rest_persist_stats(self, match, query, body) -> tuple[int, Response]:
        response = self.handle(Request(action="persist_stats"))
        return _status_for(response), response

    def stream_check(self, session_id: str, job_id: str) -> Response | None:
        """Validate an SSE subscription target (``None`` means streamable)."""
        if not self._session_exists(session_id):
            return self._rest_failure(
                "job_events", session_id, f"unknown session {session_id!r}", "not_found"
            )
        return self._job_session_error("job_events", session_id, job_id)

    def _coerce_request(self, request: Request | dict[str, Any] | str) -> Request:
        if isinstance(request, Request):
            return request
        if isinstance(request, str):
            try:
                request = json.loads(request)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"request is not valid JSON: {exc}") from exc
        if isinstance(request, dict):
            return Request.from_dict(request)
        raise ProtocolError(
            f"unsupported request type {type(request).__name__}; expected Request, dict, or str"
        )

    # ------------------------------------------------------------------ #
    def request(
        self,
        action: str,
        params: dict[str, Any] | None = None,
        *,
        session_id: str = "",
        **kwargs: Any,
    ) -> Response:
        """Convenience wrapper: ``server.request("sensitivity", perturbations=...)``.

        Parameters whose names collide with this signature (e.g. ``submit``'s
        nested ``action``) can be passed in the positional ``params`` dict;
        keyword arguments are merged on top.
        """
        merged = {**(params or {}), **kwargs}
        return self.handle(Request(action=action, params=merged, session_id=session_id))

    @property
    def request_log(self) -> list[dict[str, Any]]:
        """Per-request timing log, bounded to the most recent
        :data:`REQUEST_LOG_LIMIT` entries (used by the latency benchmark)."""
        with self._log_lock:
            return list(self._request_log)

    def stats(self) -> dict[str, Any]:
        """Registry, cache, engine, and request counters (``server_stats``).

        ``requests.latency_ms`` reports p50/p95 percentiles estimated from
        the ``repro_request_latency_ms`` histogram buckets (merged across
        actions) — the paper's "fast real-time response" requirement as a
        tail-latency number, not just an average.  Keys are unchanged from
        the earlier request-log implementation; ``None`` still means no
        requests have been observed.
        """
        latency = {
            "p50": metrics.registry().percentile("repro_request_latency_ms", 0.50),
            "p95": metrics.registry().percentile("repro_request_latency_ms", 0.95),
        }
        with self._log_lock:
            requests = {
                "total": self._requests_total,
                "failed": self._requests_failed,
                "log_size": len(self._request_log),
                "log_limit": REQUEST_LOG_LIMIT,
                "latency_ms": latency,
            }
        return {
            "registry": self.registry.stats(),
            "model_cache": self.model_cache.stats(),
            "engine": self.engine.stats(),
            "requests": requests,
        }

    def close(self) -> None:
        """Shut down the engine's worker pool and any process executor
        (daemon threads/processes; optional)."""
        self.engine.shutdown(wait=False)


class _SystemDHTTPHandler(BaseHTTPRequestHandler):
    """HTTP adapter serving the bare-POST protocol and the ``/api/v1`` routes.

    Every outcome — including malformed envelopes and internal faults — is a
    JSON response envelope with a meaningful status code: 200 for dispatched
    bare-POST requests, 400 for bad envelopes, resource-route statuses
    (200/201/400/404/409) on ``/api/v1``, 405/501 for unroutable methods (the
    ``send_error`` override keeps even stdlib-generated errors JSON), 500
    only for unexpected adapter errors — never a bare HTML traceback.  The
    one non-JSON response is ``GET .../jobs/{jid}/events``: a
    ``text/event-stream`` that frames the job's event bus as SSE.
    """

    server_version = "SystemDRepro/0.1"

    @property
    def backend(self) -> SystemDServer:
        return self.server.backend  # type: ignore[attr-defined]

    def _split_target(self) -> tuple[str, dict[str, str]]:
        parts = urlsplit(self.path)
        return parts.path, dict(parse_qsl(parts.query))

    def _read_body(self) -> str:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length).decode("utf-8", errors="replace") if length else ""

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            path, query = self._split_target()
            body = self._read_body()
            if path.startswith("/api/"):
                self._dispatch_rest("POST", path, query, body)
                return
            status, response = self.backend.handle_http(body)
            payload = response.to_dict()
        except Exception as exc:  # noqa: BLE001 - the adapter must not emit tracebacks
            self._send_json(
                500,
                Response.failure(
                    f"internal error: {type(exc).__name__}: {exc}", kind="internal"
                ).to_dict(),
            )
            return
        self._send_json(status, payload, deprecated=True)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        try:
            path, query = self._split_target()
            events = _R_JOB_EVENTS.match(path)
            if events is not None:
                self._serve_events(events.group("sid"), events.group("jid"), query)
                return
            if _R_METRICS.match(path) is not None:
                self._serve_metrics(query)
                return
            if path.startswith("/api/"):
                self._dispatch_rest("GET", path, query, "")
                return
        except Exception as exc:  # noqa: BLE001 - the adapter must not emit tracebacks
            self._send_json(
                500,
                Response.failure(
                    f"internal error: {type(exc).__name__}: {exc}", kind="internal"
                ).to_dict(),
            )
            return
        self._send_json(
            405,
            Response.failure(
                "use POST with a JSON request envelope, or a /api/v1 route",
                kind="protocol",
            ).to_dict(),
        )

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        try:
            path, query = self._split_target()
            if path.startswith("/api/"):
                self._dispatch_rest("DELETE", path, query, "")
                return
        except Exception as exc:  # noqa: BLE001 - the adapter must not emit tracebacks
            self._send_json(
                500,
                Response.failure(
                    f"internal error: {type(exc).__name__}: {exc}", kind="internal"
                ).to_dict(),
            )
            return
        self._send_json(
            405,
            Response.failure(
                "use POST with a JSON request envelope, or a /api/v1 route",
                kind="protocol",
            ).to_dict(),
        )

    do_PUT = do_GET

    def _dispatch_rest(self, method: str, path: str, query: dict[str, str], body: str) -> None:
        """Route one ``/api/v1`` request, 404-ing unknown paths."""
        if body.strip():
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError as exc:
                self._send_json(
                    400,
                    Response.failure(
                        f"request is not valid JSON: {exc}", kind="protocol"
                    ).to_dict(),
                )
                return
            if not isinstance(parsed, dict):
                self._send_json(
                    400,
                    Response.failure(
                        f"request body must be a JSON object, got {type(parsed).__name__}",
                        kind="protocol",
                    ).to_dict(),
                )
                return
        else:
            parsed = {}
        result = self.backend.handle_rest(method, path, query, parsed)
        if result is None:
            self._send_json(
                404,
                Response.failure(
                    f"no route for {method} {path}", kind="not_found"
                ).to_dict(),
            )
            return
        status, response = result
        self._send_json(status, response.to_dict())

    def _serve_events(self, session_id: str, job_id: str, query: dict[str, str]) -> None:
        """Stream one job's event bus as Server-Sent Events.

        Replays from ``Last-Event-ID`` (or ``?after=N``) so reconnecting
        clients miss nothing, emits keepalive comments while the stream is
        idle, and stops after the terminal event.  With
        ``?cancel_on_disconnect=1`` a dropped connection cooperatively
        cancels the job — detected when a keepalive or event write fails.
        """
        # imported here like AnalysisEngine above: module-level would be circular
        from ..engine import TERMINAL_EVENTS, UnknownJobError

        backend = self.backend
        error = backend.stream_check(session_id, job_id)
        if error is not None:
            self._send_json(404, error.to_dict())
            return
        raw_after = self.headers.get("Last-Event-ID") or query.get("after") or "0"
        try:
            after_seq = max(0, int(raw_after))
        except ValueError:
            self._send_json(
                400,
                Response.failure(
                    f"invalid Last-Event-ID/after value {raw_after!r}", kind="protocol"
                ).to_dict(),
            )
            return
        cancel_on_disconnect = backend._query_flag(query, "cancel_on_disconnect")
        subscription = backend.engine.events.subscribe(job_id, after_seq=after_seq)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("X-Repro-Api-Version", API_VERSION)
            self.end_headers()
            while True:
                event = subscription.get(timeout=SSE_KEEPALIVE_S)
                if event is None:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                frame = (
                    f"id: {event.seq}\n"
                    f"event: {event.type}\n"
                    f"data: {json.dumps(event.to_dict())}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                if event.type in TERMINAL_EVENTS:
                    break
        except (BrokenPipeError, ConnectionResetError, OSError):
            if cancel_on_disconnect:
                try:
                    backend.engine.cancel(job_id)
                except UnknownJobError:
                    pass
        finally:
            subscription.close()

    def _serve_metrics(self, query: dict[str, str]) -> None:
        """Serve the metrics registry: Prometheus text, or JSON with
        ``?format=json`` (the same payload as the ``metrics`` action)."""
        if str(query.get("format", "")).lower() == "json":
            response = self.backend.handle(Request(action="metrics"))
            self._send_json(_status_for(response), response.to_dict())
            return
        encoded = metrics.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(encoded)))
        self.send_header("X-Repro-Api-Version", API_VERSION)
        self.end_headers()
        self.wfile.write(encoded)

    def send_error(self, code, message=None, explain=None):  # noqa: D102
        # the stdlib falls back to send_error (an HTML page) for any method
        # without a do_* handler (PATCH, HEAD, OPTIONS, ...); keep every
        # outcome a structured JSON envelope instead
        self._send_json(
            int(code),
            Response.failure(
                str(message) if message else "use POST with a JSON request envelope",
                kind="protocol",
            ).to_dict(),
        )

    def _send_json(
        self, status: int, payload: dict[str, Any], *, deprecated: bool = False
    ) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.send_header("X-Repro-Api-Version", API_VERSION)
        if deprecated:
            # RFC 9111 miscellaneous warning: the bare-POST protocol surface
            # is at deprecation stage 2 (see repro.server.protocol)
            self.send_header("Warning", f'299 - "{BARE_POST_DEPRECATION}"')
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging."""


def serve_http(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    executor: str = "thread",
    workers: int = 4,
    state_dir: str | None = None,
    recover: bool = False,
) -> ThreadingHTTPServer:
    """Create (but do not start) an HTTP server wrapping a fresh backend.

    Call ``serve_forever()`` on the returned object to run it; tests use
    ``handle_request()`` for single-shot interactions.  The threading server
    dispatches each request on its own thread, which the session locks make
    safe.  ``executor``/``workers`` configure the backend's async engine
    (``repro serve --executor process --workers N``).

    ``state_dir`` points the server at a durable SQLite state directory
    (``repro serve --state-dir DIR``): sessions, scenario ledgers, and
    finished job results then survive restarts.  Interrupted jobs are
    re-marked failed at startup; ``recover=True`` additionally rebuilds
    every dormant session eagerly instead of on first touch.
    """
    httpd = ThreadingHTTPServer((host, port), _SystemDHTTPHandler)
    httpd.backend = SystemDServer(  # type: ignore[attr-defined]
        engine_workers=workers, executor=executor, backend=open_backend(state_dir)
    )
    if recover:
        httpd.backend.recover_sessions()  # type: ignore[attr-defined]
    return httpd
