"""Unit tests for the shared model cache and its fingerprints."""

from __future__ import annotations

import threading

import pytest

from repro.core import ModelCache, WhatIfSession, frame_fingerprint, model_fingerprint
from repro.core.model_manager import ModelManager
from repro.datasets import get_use_case
from repro.frame import DataFrame


@pytest.fixture()
def frame() -> DataFrame:
    return DataFrame(
        {
            "spend": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "calls": [3.0, 1.0, 4.0, 1.0, 5.0, 9.0],
            "revenue": [2.0, 4.0, 6.0, 8.0, 10.0, 12.0],
        }
    )


class TestFrameFingerprint:
    def test_equal_content_equal_hash(self, frame):
        other = DataFrame(frame.to_dict())
        assert other is not frame
        assert frame_fingerprint(frame) == frame_fingerprint(other)

    def test_value_change_changes_hash(self, frame):
        changed = frame.with_row_updated(0, {"spend": 99.0})
        assert frame_fingerprint(changed) != frame_fingerprint(frame)

    def test_column_name_changes_hash(self, frame):
        renamed = frame.rename({"spend": "budget"})
        assert frame_fingerprint(renamed) != frame_fingerprint(frame)

    def test_string_columns_hash(self):
        a = DataFrame({"region": ["n", "s"], "x": [1.0, 2.0]})
        b = DataFrame({"region": ["n", "e"], "x": [1.0, 2.0]})
        assert frame_fingerprint(a) != frame_fingerprint(b)

    def test_independently_loaded_datasets_match(self):
        use_case = get_use_case("deal_closing")
        first = use_case.load(n_prospects=120)
        second = use_case.load(n_prospects=120)
        assert frame_fingerprint(first) == frame_fingerprint(second)


class TestModelFingerprint:
    def test_sensitive_to_configuration(self, frame):
        from repro.core import KPI

        kpi = KPI.from_frame(frame, "revenue")
        base = model_fingerprint(frame, kpi, ["spend", "calls"], {}, 0)
        assert model_fingerprint(frame, kpi, ["spend", "calls"], {}, 0) == base
        assert model_fingerprint(frame, kpi, ["spend"], {}, 0) != base
        assert model_fingerprint(frame, kpi, ["spend", "calls"], {}, 1) != base
        assert (
            model_fingerprint(frame, kpi, ["spend", "calls"], {"fit_intercept": False}, 0)
            != base
        )


class TestModelCache:
    def test_get_or_create_caches(self):
        cache = ModelCache(max_size=4)
        calls = []
        value = cache.get_or_create("k", lambda: calls.append(1) or "model")
        again = cache.get_or_create("k", lambda: calls.append(1) or "other")
        assert value == again == "model"
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = ModelCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": now "b" is LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_zero_size_disables_caching(self):
        cache = ModelCache(max_size=0)
        assert cache.get_or_create("k", lambda: 1) == 1
        assert cache.get_or_create("k", lambda: 2) == 2
        assert len(cache) == 0

    def test_concurrent_same_key_builds_once(self):
        cache = ModelCache()
        build_count = []
        barrier = threading.Barrier(8)

        def factory():
            build_count.append(1)
            return "model"

        def worker():
            barrier.wait()
            assert cache.get_or_create("shared", factory) == "model"

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(build_count) == 1
        assert cache.stats()["misses"] == 1

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            ModelCache(max_size=-1)

    def test_failing_factory_does_not_leak_creation_lock(self):
        cache = ModelCache()
        for _ in range(3):
            with pytest.raises(RuntimeError):
                cache.get_or_create("bad", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert len(cache._pending) == 0
        # the key is still buildable once the factory recovers
        assert cache.get_or_create("bad", lambda: "model") == "model"

    def test_waiters_recover_after_owner_failure_without_double_build(self):
        cache = ModelCache()
        owner_started = threading.Event()
        release_owner = threading.Event()
        builds = []
        builds_lock = threading.Lock()

        def failing_factory():
            owner_started.set()
            release_owner.wait(timeout=5)
            raise RuntimeError("boom")

        def good_factory():
            with builds_lock:
                builds.append(threading.get_ident())
            return "model"

        def owner():
            with pytest.raises(RuntimeError):
                cache.get_or_create("k", failing_factory)

        def waiter(results):
            results.append(cache.get_or_create("k", good_factory))

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert owner_started.wait(timeout=5)
        results: list[str] = []
        waiters = [threading.Thread(target=waiter, args=(results,)) for _ in range(4)]
        for t in waiters:
            t.start()
        release_owner.set()
        owner_thread.join(timeout=5)
        for t in waiters:
            t.join(timeout=5)
        assert results == ["model"] * 4
        # after the owner's failure, exactly one waiter rebuilt
        assert len(builds) == 1
        assert len(cache._pending) == 0


class TestSessionCacheIntegration:
    def test_driver_toggle_reuses_model(self, frame, monkeypatch):
        fits = []
        original_fit = ModelManager.fit

        def counting_fit(self):
            fits.append(1)
            return original_fit(self)

        monkeypatch.setattr(ModelManager, "fit", counting_fit)
        session = WhatIfSession(frame, "revenue")
        session.sensitivity({"spend": 10.0})
        assert len(fits) == 1
        session.exclude_drivers(["calls"])
        session.sensitivity({"spend": 10.0})
        assert len(fits) == 2
        # toggling the driver back on restores a cached configuration
        session.select_drivers(["spend", "calls"])
        session.sensitivity({"spend": 10.0})
        assert len(fits) == 2
        assert session.model_cache.stats()["hits"] >= 1

    def test_two_sessions_share_one_fit(self, monkeypatch):
        fits = []
        original_fit = ModelManager.fit

        def counting_fit(self):
            fits.append(1)
            return original_fit(self)

        monkeypatch.setattr(ModelManager, "fit", counting_fit)
        shared = ModelCache()
        first = WhatIfSession.from_use_case(
            "deal_closing", dataset_kwargs={"n_prospects": 120}, model_cache=shared
        )
        second = WhatIfSession.from_use_case(
            "deal_closing", dataset_kwargs={"n_prospects": 120}, model_cache=shared
        )
        a = first.sensitivity({"Open Marketing Email": 40.0})
        b = second.sensitivity({"Open Marketing Email": 40.0})
        assert len(fits) == 1
        assert shared.stats()["hits"] == 1
        assert a.perturbed_kpi == b.perturbed_kpi

    def test_private_caches_do_not_share(self, monkeypatch):
        fits = []
        original_fit = ModelManager.fit

        def counting_fit(self):
            fits.append(1)
            return original_fit(self)

        monkeypatch.setattr(ModelManager, "fit", counting_fit)
        first = WhatIfSession.from_use_case(
            "deal_closing", dataset_kwargs={"n_prospects": 120}
        )
        second = WhatIfSession.from_use_case(
            "deal_closing", dataset_kwargs={"n_prospects": 120}
        )
        first.sensitivity({"Open Marketing Email": 40.0})
        second.sensitivity({"Open Marketing Email": 40.0})
        assert len(fits) == 2
